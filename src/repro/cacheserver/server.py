"""The shared translation-cache server.

One :class:`CacheServer` wraps one on-disk
:class:`~repro.persist.TranslationRepository` and serves it to many VM
instances over a Unix or TCP socket (length-prefixed JSON frames, see
:mod:`repro.cacheserver.protocol`).  This is the paper's
server-consolidation scenario made concrete: N instances booting the
same images amortize one translation pass through one warm store.

Design points:

* **thread-per-connection** (``socketserver.ThreadingMixIn``) with
  persistent connections — a client keeps one socket open across its
  manifest/pull/push sequence;
* **writes go through the repository's writer lease**, so handler
  threads, other server processes and direct local savers all
  serialize identically; a contended lease surfaces to the client as a
  retryable ``lease-busy`` error instead of a torn manifest;
* **server-side validation**: pushed records are structurally
  validated (content key recomputed) before they touch the store, so
  one corrupt client cannot poison the cache other instances pull
  from;
* **dedup is inherent and reported**: objects are content-addressed,
  so a push whose records were already stored by another workload
  (shared library code) writes nothing and the response says how many
  records were deduplicated;
* the server **never trusts the network**: any protocol violation on a
  connection answers with an error frame when possible and drops the
  connection, never the process;
* **bounded and drainable**: ``max_conns`` rejects excess connections
  with a retryable ``busy`` error instead of piling up handler
  threads, and :meth:`CacheServer.drain` (the ``repro serve``
  SIGTERM/SIGINT path) finishes in-flight requests — releasing any
  held writer lease — before closing, so mass-boot fleets shut down
  cleanly;
* **admission control and load shedding** (docs/overload.md):
  ``max_queue_depth`` bounds concurrently *dispatching* requests; an
  excess store op answers a retryable ``overloaded`` error carrying a
  deterministic ``retry_after`` pacing hint instead of queueing
  without bound.  Requests arriving with a spent ``deadline_ms``
  budget — or whose estimated service time (the op's own p95 latency
  histogram) exceeds the budget — answer ``deadline-exceeded``
  instead of doing work nobody will consume.  Observability ops
  (ping/health/telemetry/stats) are never shed, so operators can see
  *into* an overloaded server.

The server is deliberately dumb about *correctness* of translations —
every client re-fingerprints sources and re-screens records through
the verifier at load, so a stale or hostile server can waste a
client's time but never change its architected results.
"""

from __future__ import annotations

import logging
import socket
import socketserver
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from repro.cacheserver import protocol
from repro.obs.metrics import MetricsRegistry, metric_field
from repro.obs.telemetry import (
    DEFAULT_MAX_SPANS,
    SPAN_BUFFER_CAPACITY,
    TELEMETRY_VERSION,
    SpanBuffer,
    TraceContext,
)
from repro.persist.format import PersistFormatError, validate_record
from repro.persist.repository import TranslationRepository

log = logging.getLogger("repro.cacheserver")

#: Latency percentiles the stats op / fleet report surface.
_LATENCY_PERCENTILES = (50, 95, 99)

#: Store ops subject to queue-depth shedding.  Observability ops stay
#: admissible under overload on purpose — shedding the telemetry
#: scrape would blind the monitor exactly when it matters most.
_SHEDDABLE_OPS = frozenset({"pull", "push", "manifest"})

#: Minimum latency-histogram samples before the estimated-service-time
#: admission check trusts the p95 (cold histograms reject nothing).
_SERVICE_EST_MIN_SAMPLES = 32


class ServerStats:
    """Thread-safe request counters + per-op latency histograms.

    Counters route through an owned :class:`~repro.obs.metrics
    .MetricsRegistry` via :func:`~repro.obs.metrics.metric_field`
    (same single-source-of-truth discipline as the VM runtime's
    stats), per-op request counts are labeled ``server_requests``
    counter series, and :meth:`observe_latency` feeds pow2
    ``server_op_latency_ms`` histograms whose p50/p95/p99 the
    ``stats`` op and the fleet report's server-load section read.
    Latency is wall-clock by nature, so report consumers keep it out
    of canonical (byte-stable) documents.
    """

    errors = metric_field("server_errors")
    connections = metric_field("server_connections")
    conns_rejected = metric_field("server_conns_rejected")
    records_served = metric_field("server_records_served")
    records_received = metric_field("server_records_received")
    objects_deduped = metric_field("server_objects_deduped")
    records_rejected = metric_field("server_records_rejected")
    lease_busy = metric_field("server_lease_busy")
    requests_shed = metric_field("server_requests_shed")
    deadline_rejected = metric_field("server_deadline_rejected")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.metrics = MetricsRegistry()
        self.errors = 0
        self.connections = 0
        self.conns_rejected = 0
        self.records_served = 0
        self.records_received = 0
        self.objects_deduped = 0
        self.records_rejected = 0
        self.lease_busy = 0
        self.requests_shed = 0
        self.deadline_rejected = 0

    def count(self, attr: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, attr, getattr(self, attr) + amount)

    def count_request(self, op: str) -> None:
        with self._lock:
            self.metrics.counter("server_requests", op=op).inc()

    def observe_latency(self, op: str, ms: float) -> None:
        with self._lock:
            self.metrics.histogram("server_op_latency_ms",
                                   op=op).observe(ms)

    def latency_percentile(self, op: str, q: int,
                           min_count: int = 1) -> Optional[float]:
        """The op's latency percentile in ms, or None before
        ``min_count`` samples exist (admission control reads the p95
        as its service-time estimate)."""
        with self._lock:
            for series in self.metrics:
                if series.name == "server_op_latency_ms" \
                        and series.labels.get("op") == op:
                    if series.count >= min_count:
                        return series.percentile(q)
                    return None
        return None

    def registry_snapshot(self) -> Dict:
        """The full flat metrics snapshot the wire ``telemetry`` op
        ships — counters as numbers, histograms as re-mergeable bucket
        dicts (:func:`repro.obs.telemetry.merge_snapshots`)."""
        with self._lock:
            return self.metrics.snapshot()

    @property
    def requests(self) -> Dict[str, int]:
        """Per-op request counts (a snapshot dict, sorted by op)."""
        with self._lock:
            return self._requests()

    def _requests(self) -> Dict[str, int]:
        return {series.labels["op"]: series.value
                for series in self.metrics
                if series.name == "server_requests"}

    def _latency(self) -> Dict[str, Dict]:
        summary: Dict[str, Dict] = {}
        for series in self.metrics:
            if series.name != "server_op_latency_ms":
                continue
            entry = {"count": series.count, "mean": series.mean,
                     "min": series.min, "max": series.max}
            for q in _LATENCY_PERCENTILES:
                entry[f"p{q}"] = series.percentile(q)
            summary[series.labels["op"]] = entry
        return summary

    def to_dict(self) -> Dict:
        with self._lock:
            return {
                "requests": self._requests(),
                "errors": self.errors,
                "connections": self.connections,
                "conns_rejected": self.conns_rejected,
                "records_served": self.records_served,
                "records_received": self.records_received,
                "objects_deduped": self.objects_deduped,
                "records_rejected": self.records_rejected,
                "lease_busy": self.lease_busy,
                "requests_shed": self.requests_shed,
                "deadline_rejected": self.deadline_rejected,
                "latency": self._latency(),
            }


class _Handler(socketserver.BaseRequestHandler):
    """One connection: loop request frames until the client hangs up."""

    def handle(self) -> None:   # pragma: no cover - exercised via sockets
        server: CacheServer = self.server.cache_server
        sock = self.request
        sock.settimeout(server.connection_timeout)
        if not server._admit(sock):
            # backpressure/drain rejection: answer with the retryable
            # ``busy`` category, then drop the connection
            server.stats.count("conns_rejected")
            self._try_send(sock, protocol.error(
                "busy", "connection limit reached or server draining"))
            return
        server.stats.count("connections")
        try:
            while True:
                try:
                    first = sock.recv(1)
                except (socket.timeout, OSError):
                    return
                if not first:
                    return          # clean EOF between frames
                try:
                    header = first + protocol.recv_exactly(
                        sock, protocol.HEADER_SIZE - 1)
                    length, crc = protocol.decode_header(header)
                    payload = protocol.recv_exactly(sock, length)
                    request = protocol.decode_payload(payload, crc)
                except protocol.ProtocolError as error:
                    server.stats.count("errors")
                    log.warning("dropping connection: %s", error)
                    self._try_send(sock, protocol.error("bad-request",
                                                        str(error)))
                    return
                except (socket.timeout, OSError):
                    return
                response = server.dispatch(request)
                if not self._try_send(sock, response):
                    return
                if server.draining:
                    return          # in-flight request finished; close
        finally:
            server._release(sock)

    @staticmethod
    def _try_send(sock, message: Dict) -> bool:
        try:
            protocol.send_message(sock, message)
            return True
        except OSError:
            return False


class _TCPServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "ThreadingUnixStreamServer"):
    class _UnixServer(socketserver.ThreadingMixIn,
                      socketserver.UnixStreamServer):
        daemon_threads = True
else:                                                # pragma: no cover
    _UnixServer = None


class CacheServer:
    """Serve one translation repository over a Unix or TCP socket."""

    def __init__(self, repository, socket_path=None,
                 host: str = "127.0.0.1", port: int = 0,
                 tracer=None, lease_timeout: float = 5.0,
                 connection_timeout: float = 30.0,
                 max_conns: Optional[int] = None,
                 shard_id: str = "", role: str = "primary",
                 span_capacity: int = SPAN_BUFFER_CAPACITY,
                 max_queue_depth: Optional[int] = None,
                 shed_retry_after: float = 0.05) -> None:
        if isinstance(repository, TranslationRepository):
            self.repository = repository
        else:
            self.repository = TranslationRepository(repository)
        #: cluster identity (``repro.cluster``): which shard group this
        #: server holds and its role within the group's replica set.
        #: Standalone servers keep the empty shard id.
        self.shard_id = shard_id
        self.role = role
        self.socket_path = str(socket_path) if socket_path else None
        self.host = host
        self.port = port
        self.tracer = tracer
        self.lease_timeout = lease_timeout
        self.connection_timeout = connection_timeout
        #: admission bound on concurrent connections (None = unlimited);
        #: excess clients get a retryable ``busy`` error instead of an
        #: unbounded handler-thread pile-up
        self.max_conns = max_conns
        #: admission bound on concurrently *dispatching* store requests
        #: (None = unlimited); an excess pull/push/manifest answers the
        #: retryable ``overloaded`` error with a ``retry_after`` hint
        #: of ``shed_retry_after`` seconds per excess request — a
        #: deterministic, depth-proportional pacing signal
        self.max_queue_depth = max_queue_depth
        self.shed_retry_after = shed_retry_after
        self.stats = ServerStats()
        #: bounded buffer of spans opened under propagated trace
        #: contexts; the wire ``telemetry`` op ships it to collectors
        self.spans = SpanBuffer(capacity=span_capacity)
        self._server: Optional[socketserver.BaseServer] = None
        self._thread: Optional[threading.Thread] = None
        #: serializes pushes in-process so the lease_failures delta
        #: check below cannot be confused by a sibling handler thread
        self._push_lock = threading.Lock()
        self._trace_lock = threading.Lock()
        #: guards the dispatch-depth gauge the shed check reads
        self._inflight_lock = threading.Lock()
        self._inflight = 0
        #: guards the connection-admission state below (and doubles as
        #: the condition drain() waits on)
        self._conn_lock = threading.Condition()
        self._active_conns = 0
        self._conn_socks: set = set()
        self._draining = False

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> str:
        """Connectable address string (``unix:<path>`` or ``host:port``)."""
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"{self.host}:{self.port}"

    def start(self) -> str:
        """Bind and serve in a daemon thread; returns the address."""
        self._bind()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="cacheserver", daemon=True)
        self._thread.start()
        self._trace("server.start", address=self.address)
        log.info("cache server for %s listening on %s",
                 self.repository.root, self.address)
        return self.address

    def serve_forever(self) -> None:
        """Bind and serve on the calling thread (the CLI path)."""
        self._bind()
        self._trace("server.start", address=self.address)
        log.info("cache server for %s listening on %s",
                 self.repository.root, self.address)
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self.stop()

    def _bind(self) -> None:
        if self._server is not None:
            return
        if self.socket_path is not None:
            if _UnixServer is None:          # pragma: no cover
                raise RuntimeError("unix sockets unsupported here; "
                                   "use a TCP port")
            Path(self.socket_path).parent.mkdir(parents=True,
                                                exist_ok=True)
            try:
                Path(self.socket_path).unlink()
            except OSError:
                pass
            self._server = _UnixServer(self.socket_path, _Handler,
                                       bind_and_activate=True)
        else:
            self._server = _TCPServer((self.host, self.port), _Handler,
                                      bind_and_activate=True)
            self.port = self._server.server_address[1]
        self._server.cache_server = self

    def stop(self) -> None:
        server, self._server = self._server, None
        if server is None:
            return
        server.shutdown()
        server.server_close()
        if self.socket_path is not None:
            try:
                Path(self.socket_path).unlink()
            except OSError:
                pass
        self._trace("server.stop", address=self.address)

    def kill(self) -> None:
        """Hard-stop: close the listener *and* sever every established
        connection — the in-process model of ``kill -9``.  A plain
        :meth:`stop` leaves persistent connections draining in their
        handler threads, which is graceful-restart behaviour; a crashed
        process answers nothing, so cluster failure drills
        (``LocalCluster.stop_replica``) use this."""
        self.stop()
        with self._conn_lock:
            socks = list(self._conn_socks)
        for sock in socks:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    # -- connection admission / graceful drain ------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def active_connections(self) -> int:
        with self._conn_lock:
            return self._active_conns

    def _admit(self, sock) -> bool:
        """One connection asks to be served; False = reject (busy)."""
        with self._conn_lock:
            if self._draining:
                return False
            if self.max_conns is not None \
                    and self._active_conns >= self.max_conns:
                return False
            self._active_conns += 1
            self._conn_socks.add(sock)
            return True

    def _release(self, sock) -> None:
        with self._conn_lock:
            self._active_conns -= 1
            self._conn_socks.discard(sock)
            self._conn_lock.notify_all()

    def drain(self, grace: float = 5.0) -> bool:
        """Graceful shutdown (the SIGTERM/SIGINT path of ``repro
        serve``): stop accepting, reject new connections with the
        retryable ``busy`` error, let every in-flight request finish
        and flush its response — a push holding the writer lease
        releases it when the save completes — then stop the server.

        Persistent connections close right after their current frame;
        a connection sitting idle past ``grace`` seconds is cut.
        Returns True when every connection finished inside ``grace``.
        """
        with self._conn_lock:
            if self._draining and self._server is None:
                return True     # already drained
            self._draining = True
        server = self._server
        if server is not None:
            server.shutdown()   # no new accepts; listener closes below
        with self._conn_lock:
            clean = self._conn_lock.wait_for(
                lambda: self._active_conns == 0, timeout=grace)
            if not clean:
                # idle persistent connections never send another
                # frame; cut them so handler threads cannot leak
                for sock in list(self._conn_socks):
                    try:
                        sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    try:
                        sock.close()
                    except OSError:
                        pass
                self._conn_lock.wait_for(
                    lambda: self._active_conns == 0, timeout=1.0)
        log.info("cache server drained %s (%s)", self.address,
                 "clean" if clean else "idle connections cut")
        self.stop()
        return clean

    def __enter__(self) -> "CacheServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _trace(self, name: str, **args) -> None:
        if self.tracer is None:
            return
        with self._trace_lock:
            self.tracer.instant(name, **args)

    # -- request dispatch ---------------------------------------------------

    def _admission_check(self, op: str, request: Dict,
                         depth: int) -> Optional[Dict]:
        """Admission control (docs/overload.md); an error response to
        send instead of dispatching, or None to admit.

        Two independent guards: (1) work whose ``deadline_ms`` budget
        is spent — or would be spent by this op's estimated service
        time (own p95) — answers the *non*-retryable
        ``deadline-exceeded``, because retrying a dead request only
        amplifies load; (2) store ops past ``max_queue_depth`` answer
        the *retryable* ``overloaded`` with a deterministic
        depth-proportional ``retry_after`` pacing hint.
        """
        deadline_ms = request.get("deadline_ms")
        if isinstance(deadline_ms, bool) or \
                not isinstance(deadline_ms, (int, float)):
            deadline_ms = None          # malformed/absent: ignored
        if deadline_ms is not None:
            if deadline_ms <= 0:
                self.stats.count("deadline_rejected")
                self._trace("server.deadline", op=op,
                            deadline_ms=deadline_ms, stage="expired")
                return protocol.error(
                    "deadline-exceeded",
                    f"request budget already spent "
                    f"({deadline_ms} ms remaining)")
            estimate = self.stats.latency_percentile(
                op, 95, min_count=_SERVICE_EST_MIN_SAMPLES)
            if estimate is not None and estimate > deadline_ms:
                self.stats.count("deadline_rejected")
                self._trace("server.deadline", op=op,
                            deadline_ms=deadline_ms,
                            estimate_ms=estimate, stage="estimate")
                return protocol.error(
                    "deadline-exceeded",
                    f"estimated {op} service time {estimate:.1f} ms "
                    f"exceeds the {deadline_ms} ms budget")
        if self.max_queue_depth is not None \
                and op in _SHEDDABLE_OPS \
                and depth > self.max_queue_depth:
            excess = depth - self.max_queue_depth
            retry_after = round(self.shed_retry_after * excess, 6)
            self.stats.count("requests_shed")
            self._trace("server.shed", op=op, depth=depth,
                        bound=self.max_queue_depth,
                        retry_after=retry_after)
            response = protocol.error(
                "overloaded",
                f"queue depth {depth} over bound "
                f"{self.max_queue_depth}")
            response["retry_after"] = retry_after
            return response
        return None

    def dispatch(self, request: Dict) -> Dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) \
            if isinstance(op, str) else None
        if handler is None:
            self.stats.count("errors")
            return protocol.error("bad-request", f"unknown op {op!r}")
        self.stats.count_request(op)
        self._trace("server.request", op=op)
        # distributed tracing: a request stamped with a trace context
        # runs inside a child span; the span closes on every path (the
        # SpanBuffer context manager guarantees it) and an error
        # response or handler exception marks it ``error``
        context = TraceContext.from_wire(request.get("trace_ctx"))
        started = time.perf_counter()
        with self._inflight_lock:
            self._inflight += 1
            depth = self._inflight
        try:
            shed = self._admission_check(op, request, depth)
            if shed is not None:
                return shed
            if context is None:
                return handler(request)
            with self.spans.span("server.op", context, op=op,
                                 shard=self.shard_id,
                                 role=self.role) as span:
                response = handler(request)
                if not response.get("ok", False):
                    span["status"] = "error"
                return response
        except Exception as error:   # noqa: BLE001 - the connection
            # must get an answer and the server must outlive any bug
            self.stats.count("errors")
            log.exception("op %s failed", op)
            return protocol.error(
                "internal", f"{type(error).__name__}: {error}")
        finally:
            with self._inflight_lock:
                self._inflight -= 1
            self.stats.observe_latency(
                op, (time.perf_counter() - started) * 1000.0)

    @staticmethod
    def _fingerprints(request: Dict):
        config_fp = request.get("config_fp")
        image_fp = request.get("image_fp")
        if not isinstance(config_fp, str) or not isinstance(image_fp, str):
            return None
        return config_fp, image_fp

    def _op_ping(self, request: Dict) -> Dict:
        return protocol.ok(root=str(self.repository.root))

    def _op_health(self, request: Dict) -> Dict:
        """Structured liveness: shard identity + store + lease state.

        Smoke tools and the cluster client's per-endpoint health view
        poll this instead of ad-hoc pings — one frame answers "who are
        you, how much do you hold, can you take writes right now".
        """
        lease = self.repository.writer_lease()
        body = lease._read()
        held = body is not None
        return protocol.ok(
            shard_id=self.shard_id,
            role=self.role,
            address=self.address,
            objects=len(self.repository._load_meta()["objects"]),
            draining=self.draining,
            lease={"held": held,
                   "holder": body.get("holder") if held else None,
                   "expired": lease._expired() if held else False})

    def _op_telemetry(self, request: Dict) -> Dict:
        """The observability scrape: identity + the full metrics
        snapshot + the bounded span buffer.

        :class:`repro.obs.collector.ClusterCollector` polls this on
        every replica of every shard and re-merges the snapshots
        exactly (pow2 buckets sum bound-by-bound).  Versioned so a
        future collector cannot misread an old server: an unknown
        ``"v"`` answers ``bad-request`` instead of guessing.
        """
        version = request.get("v")
        if version != TELEMETRY_VERSION:
            return protocol.error(
                "bad-request",
                f"unsupported telemetry version {version!r} "
                f"(this server speaks {TELEMETRY_VERSION})")
        max_spans = request.get("max_spans", DEFAULT_MAX_SPANS)
        if isinstance(max_spans, bool) or \
                not isinstance(max_spans, int) or max_spans < 0:
            return protocol.error("bad-request",
                                  f"bad max_spans {max_spans!r}")
        return protocol.ok(
            version=TELEMETRY_VERSION,
            shard_id=self.shard_id,
            role=self.role,
            address=self.address,
            objects=len(self.repository._load_meta()["objects"]),
            draining=self.draining,
            metrics=self.stats.registry_snapshot(),
            spans=self.spans.to_wire(max_spans))

    def _op_manifest(self, request: Dict) -> Dict:
        pair = self._fingerprints(request)
        if pair is None:
            return protocol.error("bad-request", "missing fingerprints")
        response = protocol.ok(
            entries=self.repository.manifest_entry_count(*pair))
        if request.get("keys"):
            manifest = self.repository._read_manifest(*pair)
            entries = manifest.get("entries", []) if manifest else []
            response["keys"] = sorted(key for key in entries
                                      if isinstance(key, str))
        return response

    def _op_pull(self, request: Dict) -> Dict:
        pair = self._fingerprints(request)
        if pair is None:
            return protocol.error("bad-request", "missing fingerprints")
        records = self.repository.load(*pair)
        self.stats.count("records_served", len(records))
        return protocol.ok(
            records=records,
            manifest_entries=self.repository.manifest_entry_count(*pair))

    def _op_push(self, request: Dict) -> Dict:
        pair = self._fingerprints(request)
        records = request.get("records")
        if pair is None or not isinstance(records, list):
            return protocol.error("bad-request",
                                  "missing fingerprints or records")
        valid = []
        rejected = 0
        for record in records:
            try:
                validate_record(record)
            except PersistFormatError:
                rejected += 1
                continue
            valid.append(record)
        self.stats.count("records_received", len(records))
        self.stats.count("records_rejected", rejected)
        config_name = request.get("config_name")
        if not isinstance(config_name, str):
            config_name = ""
        if request.get("repair"):
            # anti-entropy heal: a pushed key whose on-disk object
            # exists but no longer validates must be rewritten — the
            # normal save would skip it as an already-stored dedup
            for record in valid:
                key = record["key"]
                path = self.repository._object_path(key)
                try:
                    damaged = path.exists() and \
                        self.repository._read_object(key) is None
                except OSError:
                    damaged = False
                if damaged:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        with self._push_lock:
            failures_before = self.repository.lease_failures
            written = self.repository.save(
                valid, *pair, config_name=config_name,
                lease_timeout=self.lease_timeout,
                merge=bool(request.get("merge")))
            lease_failed = \
                self.repository.lease_failures > failures_before
        if lease_failed:
            self.stats.count("lease_busy")
            return protocol.error(
                "lease-busy",
                "another writer holds the repository lease")
        deduped = max(0, len(valid) - written)
        self.stats.count("objects_deduped", deduped)
        return protocol.ok(written=written, deduped=deduped,
                           rejected=rejected)

    def _op_stats(self, request: Dict) -> Dict:
        stats = self.repository.stats()
        return protocol.ok(
            repository={
                "root": stats.root,
                "objects": stats.objects,
                "total_bytes": stats.total_bytes,
                "clock": stats.clock,
                "manifests": stats.manifests,
            },
            server=self.stats.to_dict())
