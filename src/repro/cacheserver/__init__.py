"""Shared translation-cache server (the server-consolidation scenario).

Many VM instances booting the same images should pay for one
translation pass, not N: this package serves the PR-2 persistent
repository over a Unix/TCP socket so instances pull warm-start payloads
from, and push fresh translations into, one shared store.

* :mod:`repro.cacheserver.protocol` — length-prefixed, CRC-checked
  JSON frames shared by client and server;
* :mod:`repro.cacheserver.server` — the threaded server, writer-lease
  serialized writes, server-side record validation, cross-workload
  content-addressed dedup.

The fault-tolerant *client* is
:class:`repro.persist.remote.RemoteRepository` — it lives with the
other repositories because the VM treats it as just another repository
that happens to degrade gracefully (timeouts, bounded retries with
backoff, a circuit breaker, local/cold fallback).

See ``docs/cache_server.md`` for the protocol and the failure matrix.
"""

from repro.cacheserver.protocol import (
    HEADER_SIZE,
    MAX_PAYLOAD,
    ProtocolError,
    RETRYABLE_ERRORS,
    decode_frame,
    encode_frame,
    recv_message,
    send_message,
)
from repro.cacheserver.server import CacheServer, ServerStats

__all__ = [
    "CacheServer",
    "HEADER_SIZE",
    "MAX_PAYLOAD",
    "ProtocolError",
    "RETRYABLE_ERRORS",
    "ServerStats",
    "decode_frame",
    "encode_frame",
    "recv_message",
    "send_message",
]
