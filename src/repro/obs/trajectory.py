"""Bench trajectory — append-only benchmark history + regression gate.

Single-shot benchmark results answer "how fast is it now"; the
trajectory answers "which PR made it slower".  Every benchmark run
appends one row per bench to ``results/bench_history.jsonl``:

    {"bench": <id>, "fp": <config fingerprint>, "metrics": {...}}

Rows are pure JSON lines with sorted keys and **no timestamps** — the
file's line order is the time axis, exactly like the collector's
scrape index, so the history itself is deterministic for a given
sequence of runs.  The config fingerprint hashes the knobs that
legitimately change results (seed, thresholds, instruction budgets);
``repro bench diff`` only compares rows whose fingerprints match, so
an intentional re-tune starts a fresh baseline instead of tripping
the gate.

Regression detection is direction-aware: metric names ending in
cycle/latency/miss/error-ish suffixes regress *upward*, names that
are obviously throughput-ish regress *downward*, and the gate fails
on any relative change beyond the tolerance (default 5%).
``tools/bench_smoke.py`` appends its rows and runs the gate inside
``make bench-smoke`` (docs/observability.md).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Default history location (shared with the benchmark suite).
HISTORY_PATH = "results/bench_history.jsonl"

#: Default regression tolerance, in percent.
DEFAULT_TOLERANCE = 5.0

#: Metric-name substrings where *higher* is better; everything else
#: treats an increase as the regression direction (cycles, misses,
#: errors, byte counts — the common case in this repo).
_HIGHER_IS_BETTER = ("gain", "loaded", "ipc", "throughput", "hit",
                     "per_sec", "deduped")


def config_fingerprint(config: Dict) -> str:
    """Short stable hash of the knobs that legitimately move results."""
    text = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


def history_row(bench: str, metrics: Dict, config: Dict) -> Dict:
    """One trajectory row: scalar metrics only, sorted, no clocks."""
    scalars = {}
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, bool) or \
                not isinstance(value, (int, float)):
            continue
        scalars[name] = value
    return {"bench": str(bench), "fp": config_fingerprint(config),
            "metrics": scalars}


def append_row(row: Dict, path=HISTORY_PATH) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(row, sort_keys=True,
                                separators=(",", ":")) + "\n")


def load_history(path=HISTORY_PATH) -> List[Dict]:
    """All rows in file order; a missing file is an empty history."""
    path = Path(path)
    if not path.exists():
        return []
    rows = []
    for line_no, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError as error:
            raise ValueError(
                f"{path}:{line_no}: corrupt history row: {error}"
            ) from error
        if not isinstance(row, dict) or "bench" not in row:
            raise ValueError(f"{path}:{line_no}: malformed history row")
        rows.append(row)
    return rows


def metric_direction(name: str) -> str:
    """``up`` when a larger value is better, else ``down``."""
    lowered = name.lower()
    if any(tag in lowered for tag in _HIGHER_IS_BETTER):
        return "up"
    return "down"


def _relative_change(base: float, value: float) -> Optional[float]:
    if base == 0:
        return None if value == 0 else float("inf")
    return (value - base) / abs(base) * 100.0


def bench_diff(rows: List[Dict], against: str = "last",
               tolerance: float = DEFAULT_TOLERANCE
               ) -> Tuple[List[str], List[Dict]]:
    """Compare each bench's newest row against its baseline.

    ``against="last"`` baselines on the previous same-fingerprint row
    (PR-over-PR drift); ``"first"`` on the oldest one (cumulative
    drift).  Returns ``(regressions, comparisons)`` — the gate fails
    when ``regressions`` is non-empty.  A bench with no matching
    baseline (first run, or a fingerprint change) passes vacuously
    and says so in its comparison entry.
    """
    if against not in ("last", "first"):
        raise ValueError(f"bad --against {against!r} "
                         f"(choose last or first)")
    newest: Dict[str, Dict] = {}
    for row in rows:                # later rows shadow earlier ones
        newest[row["bench"]] = row
    regressions: List[str] = []
    comparisons: List[Dict] = []
    for bench in sorted(newest):
        row = newest[bench]
        lineage = [r for r in rows
                   if r["bench"] == bench and r.get("fp") == row.get("fp")]
        if len(lineage) < 2:
            comparisons.append({"bench": bench, "baseline": None,
                                "metrics": {}})
            continue
        baseline = lineage[0] if against == "first" else lineage[-2]
        entry: Dict = {"bench": bench, "baseline": against,
                       "metrics": {}}
        base_metrics = baseline.get("metrics", {})
        for name in sorted(row.get("metrics", {})):
            value = row["metrics"][name]
            if name not in base_metrics:
                continue
            base = base_metrics[name]
            change = _relative_change(base, value)
            direction = metric_direction(name)
            regressed = False
            if change is None:
                pass                        # 0 -> 0: steady
            elif change == float("inf"):
                regressed = direction == "down"
            elif direction == "down":
                regressed = change > tolerance
            else:
                regressed = change < -tolerance
            entry["metrics"][name] = {
                "base": base, "value": value,
                "change_pct": (None if change is None
                               or change == float("inf") else
                               round(change, 2)),
                "regressed": regressed,
            }
            if regressed:
                shown = "new nonzero" if change == float("inf") \
                    else f"{change:+.2f}%"
                regressions.append(
                    f"{bench}: {name} {base} -> {value} ({shown}, "
                    f"tolerance {tolerance:g}%, "
                    f"{'lower' if direction == 'down' else 'higher'}"
                    f"-is-better)")
        comparisons.append(entry)
    return regressions, comparisons


def format_diff(regressions: List[str],
                comparisons: List[Dict]) -> str:
    lines = []
    for entry in comparisons:
        if entry["baseline"] is None:
            lines.append(f"{entry['bench']}: no baseline "
                         f"(first run at this fingerprint)")
            continue
        moved = {name: info for name, info
                 in entry["metrics"].items()
                 if info["change_pct"] not in (None, 0.0)}
        if not moved:
            lines.append(f"{entry['bench']}: steady "
                         f"({len(entry['metrics'])} metric(s))")
            continue
        lines.append(f"{entry['bench']}:")
        for name, info in moved.items():
            flag = "  REGRESSED" if info["regressed"] else ""
            lines.append(
                f"  {name}: {info['base']} -> {info['value']} "
                f"({info['change_pct']:+.2f}%){flag}")
    if regressions:
        lines.append("")
        lines.append(f"{len(regressions)} regression(s) beyond "
                     f"tolerance:")
        lines.extend(f"  {problem}" for problem in regressions)
    else:
        lines.append("trajectory ok: no regressions beyond tolerance")
    return "\n".join(lines)
