"""Logging for the ``repro.*`` tree — one root, quiet by default.

Every subsystem logs under a ``repro.<subsystem>`` logger
(``repro.vmm``, ``repro.translator``, ``repro.persist``, ...).  The
library itself never calls ``basicConfig``; entry points call
:func:`configure_logging` once, which installs a single handler on the
``repro`` root logger so the whole tree shares one format and level.
The CLI exposes this as ``repro --log-level debug <cmd>``; the default
is WARNING, i.e. silent on healthy runs.
"""

from __future__ import annotations

import logging
from typing import Optional

LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def configure_logging(level: Optional[str] = None) -> logging.Logger:
    """Install (or retune) the handler on the ``repro`` root logger.

    Idempotent: repeated calls adjust the level instead of stacking
    handlers, so tests can call it freely.
    """
    root = logging.getLogger("repro")
    resolved = getattr(logging, (level or "warning").upper(), None)
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}; "
                         f"choose from {', '.join(LOG_LEVELS)}")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    root.setLevel(resolved)
    root.propagate = False
    return root
