"""Declarative SLOs over collector indicators — pass/warn/fail with
burn accounting.

An :class:`SLORule` names one indicator the
:class:`~repro.obs.collector.ClusterCollector` computes (p99 pull
latency, quorum-miss rate, breaker flaps, stale-replica ratio, ...)
and two thresholds.  Evaluation is pure arithmetic — no clocks, no
state — so the same indicator values always produce byte-identical
verdicts, and rules carrying wall-clock indicators are flagged
(``wall_clock=True``) so canonical (byte-stable) documents can leave
them out while operator output keeps them.

``repro monitor --slo @rules.json`` loads a custom rule file; the
fleet ``--collect`` axis embeds verdicts in ``results/fleet_boot.json``
(docs/observability.md, "Distributed tracing & monitoring").
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

#: Verdict statuses from best to worst (worst_status keys on this).
_STATUS_ORDER = ("pass", "warn", "fail")


@dataclass(frozen=True)
class SLORule:
    """One objective: ``indicator`` must stay at or below ``warn``
    (else warn) and at or below ``fail`` (else fail)."""

    name: str
    indicator: str
    warn: float
    fail: float
    wall_clock: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.fail < self.warn:
            raise ValueError(
                f"SLO {self.name!r}: fail threshold {self.fail} below "
                f"warn threshold {self.warn}")


#: The default objectives for a healthy translation-cache cluster.
#: Thresholds are deliberately loose — the point of the defaults is
#: catching *pathology* (a flapping breaker, a replica left behind by
#: a failed fan-out), not tuning; deployments tighten via ``--slo``.
DEFAULT_SLOS = (
    SLORule("pull-p99-ms", "pull_p99_ms", warn=50.0, fail=1000.0,
            wall_clock=True,
            description="p99 wall-clock server-side pull time"),
    SLORule("quorum-miss-rate", "quorum_miss_rate",
            warn=0.0, fail=0.25,
            description="replicated pushes settling below quorum"),
    SLORule("breaker-flaps", "breaker_flaps", warn=0.0, fail=4.0,
            description="circuit-breaker opens + reachability flaps"),
    SLORule("stale-replica-ratio", "stale_replica_ratio",
            warn=0.0, fail=0.5,
            description="replicas holding fewer objects than their "
                        "group's best"),
    # overload-protection objectives (docs/overload.md).  Retry
    # amplification is the metastability guard from arXiv 1606.05794:
    # attempts per logical request must stay bounded (the retry budget
    # targets <= 2x) even when the cluster is melting.  Shedding is
    # *healthy* under a thundering herd, so its thresholds only catch
    # a server rejecting nearly everything; deadline misses mean work
    # was abandoned or served late — a capacity signal.
    SLORule("retry-amplification", "retry_amplification",
            warn=2.0, fail=3.0,
            description="request attempts per logical client request "
                        "(1.0 = no retries; the budget targets <= 2x)"),
    SLORule("shed-rate", "shed_rate", warn=0.6, fail=0.95,
            description="server requests answered with the retryable "
                        "overloaded shed"),
    SLORule("deadline-miss-rate", "deadline_miss_rate",
            warn=0.1, fail=0.5,
            description="client requests abandoned past their "
                        "deadline budget (late responses included)"),
)


def evaluate(indicators: Dict[str, Optional[float]],
             rules: Sequence[SLORule] = DEFAULT_SLOS) -> List[Dict]:
    """One verdict per rule, in rule order.

    A missing or ``None`` indicator passes vacuously (no data is not
    a violation — a cold cluster has no p99 yet).  ``burn`` is the
    fraction of the fail budget consumed (1.0 = at the threshold).
    """
    verdicts = []
    for rule in rules:
        value = indicators.get(rule.indicator)
        if value is None:
            status, burn = "pass", 0.0
        else:
            value = float(value)
            if value > rule.fail:
                status = "fail"
            elif value > rule.warn:
                status = "warn"
            else:
                status = "pass"
            if rule.fail > 0:
                burn = round(value / rule.fail, 4)
            else:
                burn = 0.0 if value <= 0 else float("inf")
        verdicts.append({
            "name": rule.name,
            "indicator": rule.indicator,
            "value": value,
            "warn": rule.warn,
            "fail": rule.fail,
            "status": status,
            "burn": burn,
            "wall_clock": rule.wall_clock,
        })
    return verdicts


def worst_status(verdicts: Iterable[Dict]) -> str:
    """``fail`` > ``warn`` > ``pass`` across a verdict list."""
    worst = 0
    for verdict in verdicts:
        status = verdict.get("status", "pass")
        if status in _STATUS_ORDER:
            worst = max(worst, _STATUS_ORDER.index(status))
    return _STATUS_ORDER[worst]


def load_slo_file(path) -> List[SLORule]:
    """Load rules from a JSON file: a list of SLORule field dicts."""
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, list):
        raise ValueError(f"{path}: SLO file must hold a JSON list")
    rules = []
    for index, entry in enumerate(doc):
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: rule {index} is not an object")
        try:
            rules.append(SLORule(
                name=entry["name"],
                indicator=entry["indicator"],
                warn=float(entry["warn"]),
                fail=float(entry["fail"]),
                wall_clock=bool(entry.get("wall_clock", False)),
                description=str(entry.get("description", ""))))
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(
                f"{path}: rule {index} malformed: {error}") from error
    return rules
