"""Typed lifecycle event tracer + bounded flight recorder.

The tracer records *what the translation stack did and when*, on the
simulated-cycle clock: block first-executions, BBT/SBT translations
(start + finish, with instruction counts), hotspot promotions, chains
made and broken, cache flushes/evictions, warm-start loads and rejects,
quarantine actions, integrity-sweep hits.  Event names are drawn from
:data:`EVENT_TYPES`; unknown names are rejected at emit time so the
taxonomy in ``docs/observability.md`` cannot silently rot.

Determinism contract: timestamps come from a caller-supplied clock
(the :class:`~repro.obs.ledger.CycleLedger`'s cycle total in practice)
plus a per-tracer sequence number — never the wall clock — so the same
workload and seed produce a byte-identical exported stream.

Cost contract: the tracer is only constructed when ``trace=True``; all
hot-path hooks in the runtime are guarded by ``if tracer is not None``
so a non-traced run pays a single pointer test per hook site (the
``make trace-smoke`` gate measures this).

The **flight recorder** is the same stream viewed through a bounded
ring: the last ``flight_capacity`` events are always retained even
when full-stream retention is off (``keep_events=False``), and
:meth:`EventTracer.flight_dump` snapshots them together with the
faulting pc/mode/dispatch context.  ``VMRuntimeError`` raise sites and
the chaos harness attach these dumps, turning fault reports into
replayable forensic traces.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

log = logging.getLogger("repro.obs")

#: The event taxonomy.  Maps event name -> Perfetto phase type:
#: ``"X"`` events are complete slices (have a duration), ``"i"`` events
#: are instants.  ``docs/observability.md`` documents each.
EVENT_TYPES: Dict[str, str] = {
    # lifecycle of a guest block
    "block.first_exec": "i",
    "translate.bbt": "X",
    "translate.sbt": "X",
    "hotspot.promote": "i",
    "hotspot.misfire": "i",
    # translation-directory linkage
    "chain.made": "i",
    "chain.broken": "i",
    # code-cache management
    "cache.flush": "i",
    "cache.evict": "i",
    # persistence plane
    "warmstart.load": "i",
    "warmstart.reject": "i",
    "warmstart.done": "i",
    # robustness plane
    "fault.translation": "i",
    "quarantine.add": "i",
    "quarantine.degrade": "i",
    "integrity.hit": "i",
    "integrity.sweep": "i",
    # shared-cache client (RemoteRepository)
    "remote.request": "i",
    "remote.retry": "i",
    "remote.fallback": "i",
    "remote.breaker_open": "i",
    "remote.breaker_close": "i",
    # overload-protection plane (docs/overload.md): client-side
    # decisions — a shed answer honored, a deadline budget spent (or a
    # late response dropped), a retry token bucket running dry
    "remote.shed": "i",
    "remote.deadline": "i",
    "remote.budget_exhausted": "i",
    # distributed tracing (repro.obs.telemetry): client-side request
    # slices stamped with the propagated trace context, and the
    # server-side child span opened under it
    "remote.pull": "X",
    "remote.push": "X",
    "remote.op": "X",
    "server.op": "X",
    # shared-cache server
    "server.start": "i",
    "server.request": "i",
    "server.stop": "i",
    # server-side admission control: a request shed past the queue
    # bound, or rejected because its deadline budget was already spent
    "server.shed": "i",
    "server.deadline": "i",
    # cluster tier (repro.cluster): the degradation ladder made
    # visible — replica failovers, per-group degradations, write
    # quorum accounting, anti-entropy repair actions
    "cluster.failover": "i",
    "cluster.degrade": "i",
    "cluster.quorum": "i",
    "cluster.repair": "i",
    # hedged reads: the primary probe abandoned past its threshold,
    # and the sibling replica's answer winning the race
    "cluster.hedge": "i",
    "cluster.hedge_win": "i",
    # run envelope
    "run.begin": "i",
    "run.end": "i",
    "recorder.dump": "i",
    # fleet harness (repro.fleet): per-instance boot slices on the
    # fleet summary track plus steady-state markers
    "fleet.boot": "X",
    "fleet.steady": "i",
}

#: Perfetto track (tid) per event family — keeps the viewer lanes tidy.
_TRACKS = {
    "translate": 1,
    "chain": 2,
    "cache": 3,
    "warmstart": 4,
    "fault": 5,
    "quarantine": 5,
    "integrity": 5,
    "hotspot": 6,
    "block": 7,
    "remote": 8,
    "server": 9,
    "fleet": 10,
    "cluster": 11,
}
_DEFAULT_TRACK = 0


def event_track(name: str) -> int:
    return _TRACKS.get(name.split(".", 1)[0], _DEFAULT_TRACK)


@dataclass
class TraceEvent:
    """One tracer event, already normalized for export."""

    seq: int                 # per-tracer emission index (tie-breaker)
    name: str                # key into EVENT_TYPES
    ts: float                # sim-cycle timestamp (monotone)
    dur: float = 0.0         # sim-cycle duration ("X" events only)
    args: Dict = field(default_factory=dict)

    @property
    def phase(self) -> str:
        return EVENT_TYPES[self.name]

    def to_trace_event(self) -> Dict:
        """Render as one Chrome ``trace_event`` entry."""
        entry: Dict = {
            "name": self.name,
            "ph": self.phase,
            "ts": self.ts,
            "pid": 1,
            "tid": event_track(self.name),
            "args": dict(sorted(self.args.items())),
        }
        if self.phase == "X":
            entry["dur"] = self.dur
        else:
            entry["s"] = "t"     # instant scoped to its track
        return entry


class EventTracer:
    """Deterministic event stream + flight-recorder ring.

    ``clock`` is any zero-arg callable returning the current simulated
    cycle; the runtime passes ``lambda: ledger.total``.  ``keep_events``
    controls full-stream retention (the flight ring is always kept).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 keep_events: bool = True,
                 flight_capacity: int = 256) -> None:
        self._clock = clock or (lambda: 0.0)
        self._seq = 0
        self.keep_events = keep_events
        self.events: List[TraceEvent] = []
        self.flight: Deque[TraceEvent] = deque(maxlen=flight_capacity)
        self.dropped = 0

    def now(self) -> float:
        return self._clock()

    # -- emission ------------------------------------------------------------

    def _emit(self, event: TraceEvent) -> TraceEvent:
        if self.keep_events:
            self.events.append(event)
        else:
            self.dropped += 1
        self.flight.append(event)
        return event

    def instant(self, name: str, **args) -> TraceEvent:
        """Emit an instant ("i") event at the current sim cycle."""
        if EVENT_TYPES.get(name) != "i":
            raise ValueError(f"unknown or non-instant event {name!r}")
        self._seq += 1
        return self._emit(TraceEvent(seq=self._seq, name=name,
                                     ts=self._clock(), args=args))

    def complete(self, name: str, start: float, **args) -> TraceEvent:
        """Emit a complete ("X") slice from ``start`` to now."""
        if EVENT_TYPES.get(name) != "X":
            raise ValueError(f"unknown or non-slice event {name!r}")
        self._seq += 1
        now = self._clock()
        return self._emit(TraceEvent(seq=self._seq, name=name, ts=start,
                                     dur=max(0.0, now - start), args=args))

    # -- flight recorder -----------------------------------------------------

    def flight_dump(self, reason: str, **context) -> Dict:
        """Snapshot the ring + fault context (attached to errors)."""
        dump = {
            "reason": reason,
            "context": dict(sorted(context.items())),
            "cycle": self._clock(),
            "events_emitted": self._seq,
            "events": [event.to_trace_event() for event in self.flight],
        }
        self.instant("recorder.dump", reason=reason)
        log.debug("flight recorder dumped: %s (%d events)",
                  reason, len(dump["events"]))
        return dump

    def __len__(self) -> int:
        return len(self.events)
