"""Trace export: Chrome/Perfetto ``trace_event`` JSON + schema check.

:func:`export_trace` renders a tracer + ledger pair into the JSON
object format Perfetto and ``chrome://tracing`` load directly: a
``traceEvents`` array (one entry per event, ``"X"`` slices carrying
``dur``), plus ``metadata`` and the ledger's phase-attribution summary
(``phase_cycles`` / ``total_cycles`` / ``eq1`` / ``timeline``) as
top-level extras — the format explicitly permits extra keys, and
viewers ignore them.

Determinism: events are sorted by (ts, seq) and serialized with
``sort_keys=True`` and fixed separators, so the same run produces a
byte-identical file (``tests/test_obs.py`` pins this).

:func:`validate_trace` checks an export against the checked-in
``trace_schema.json``.  It uses :mod:`jsonschema` when the container
has it and otherwise falls back to a small structural validator
covering the same constraints, so the schema gate never silently
no-ops.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.ledger import CycleLedger
from repro.obs.tracer import EventTracer

log = logging.getLogger("repro.obs")

_SCHEMA_PATH = Path(__file__).with_name("trace_schema.json")


def load_trace_schema() -> Dict:
    """The checked-in JSON schema for exported traces."""
    return json.loads(_SCHEMA_PATH.read_text())


def export_trace(tracer: EventTracer,
                 ledger: Optional[CycleLedger] = None,
                 metadata: Optional[Dict] = None) -> Dict:
    """Render a run's trace as a Perfetto-loadable JSON object."""
    events = sorted(tracer.events, key=lambda e: (e.ts, e.seq))
    doc: Dict = {
        "traceEvents": [event.to_trace_event() for event in events],
        "displayTimeUnit": "ns",    # 1 "us" tick == 1 simulated cycle
        "metadata": {
            "clock": "simulated-cycles",
            "events_emitted": len(events),
            "events_dropped": tracer.dropped,
            **(metadata or {}),
        },
    }
    if ledger is not None:
        attribution = ledger.to_dict()
        doc["total_cycles"] = attribution["total_cycles"]
        doc["phase_cycles"] = attribution["phase_cycles"]
        doc["eq1"] = attribution["eq1"]
        doc["conserved"] = attribution["conserved"]
        doc["timeline"] = attribution["timeline"]
        doc["top_blocks"] = attribution["top_blocks"]
    return doc


def dump_trace(doc: Dict, path) -> None:
    """Serialize deterministically (sorted keys, fixed separators)."""
    Path(path).write_text(serialize_trace(doc))


def serialize_trace(doc: Dict) -> str:
    return json.dumps(doc, sort_keys=True, indent=1,
                      separators=(",", ": ")) + "\n"


# -- validation ---------------------------------------------------------------

def validate_trace(doc: Dict, schema: Optional[Dict] = None) -> List[str]:
    """Validate an export; returns a list of problems (empty = valid)."""
    if schema is None:
        schema = load_trace_schema()
    try:
        import jsonschema
    except ImportError:                                  # pragma: no cover
        log.info("jsonschema unavailable; using structural fallback")
        return _validate_structural(doc)
    validator = jsonschema.Draft7Validator(schema)
    problems = [f"{'/'.join(str(p) for p in error.absolute_path) or '<root>'}:"
                f" {error.message}"
                for error in validator.iter_errors(doc)]
    # the schema cannot express cross-field arithmetic; check
    # conservation here in both code paths
    problems.extend(_validate_conservation(doc))
    return problems


def _validate_structural(doc: Dict) -> List[str]:
    """Dependency-free subset of the schema's constraints."""
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents: missing or not an array"]
    last_key = None
    for index, event in enumerate(events):
        where = f"traceEvents/{index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for field_name, kind in (("name", str), ("ph", str),
                                 ("ts", (int, float)), ("pid", int),
                                 ("tid", int), ("args", dict)):
            if not isinstance(event.get(field_name), kind):
                problems.append(f"{where}: bad {field_name!r}")
        if event.get("ph") == "X" and not isinstance(
                event.get("dur"), (int, float)):
            problems.append(f"{where}: X event missing dur")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if last_key is not None and ts < last_key:
                problems.append(f"{where}: ts not monotone")
            last_key = ts
    if not isinstance(doc.get("metadata"), dict):
        problems.append("metadata: missing or not an object")
    problems.extend(_validate_conservation(doc))
    return problems


def _validate_conservation(doc: Dict) -> List[str]:
    """Phase totals must sum to total_cycles (when attribution present)."""
    if "phase_cycles" not in doc:
        return []
    phases = doc.get("phase_cycles")
    total = doc.get("total_cycles")
    if not isinstance(phases, dict) or not isinstance(total, (int, float)):
        return ["phase_cycles/total_cycles: malformed attribution block"]
    attributed = sum(phases.values())
    if abs(attributed - total) > 1e-6 * max(total, 1.0):
        return [f"phase_cycles: attributed {attributed} != "
                f"total_cycles {total} (cycles leaked or double-counted)"]
    return []
