"""ClusterCollector — the central telemetry scraper for a sharded
translation-cache cluster.

One collector owns one cluster spec and polls every replica of every
shard through the wire ``telemetry`` op
(:mod:`repro.cacheserver.protocol`), merging what comes back into a
deterministic time-series store:

* **scrape index is the time axis** — not the wall clock, so two runs
  of the same fleet scrape the same counters at the same indices and
  the canonical snapshot serializes byte-identically;
* **per-scrape labeled deltas** — each numeric series diffs against
  the previous scrape (clamped at zero across a replica restart);
* **exact histogram re-merge** — pow2 latency buckets from every
  replica sum bound-by-bound
  (:func:`repro.obs.telemetry.merge_histogram`), so the fleet-wide
  p99 is what one histogram observing everything would report;
* **SLO verdicts** — declarative rules (:mod:`repro.obs.slo`) over
  the derived indicators, with burn accounting;
* **anomaly detection** — down targets, breaker/reachability
  flapping, replica divergence (a replica holding fewer objects than
  its group's best — the signature of a missed fan-out write).

Targets are keyed ``<group>/replica<index>`` — never by address —
because LocalCluster ports are ephemeral; addresses only appear in
non-canonical (operator) snapshots.  Wall-clock material (latency
histograms, wall-clock SLO verdicts) is likewise excluded from
canonical snapshots so the determinism contract of
``results/fleet_boot.json`` survives the embedding.

``repro monitor`` drives one interactively; the fleet engine's
``--collect`` axis attaches one to a hosted cluster for the run's
lifetime (docs/observability.md, docs/fleet.md).
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.slo import DEFAULT_SLOS, evaluate
from repro.obs.telemetry import (
    DEFAULT_MAX_SPANS,
    counter_deltas,
    histogram_percentile,
    merge_snapshots,
    telemetry_request,
)

log = logging.getLogger("repro.obs")

SCHEMA = "repro.telemetry/v1"

#: Metric series excluded from canonical snapshots: their values come
#: from the wall clock, which byte-stable documents must not carry.
WALL_CLOCK_SERIES = ("server_op_latency_ms",)

#: Indicators likewise derived from wall-clock series.
WALL_CLOCK_INDICATORS = frozenset({"pull_p99_ms"})


class ClusterCollector:
    """Scrape every replica of every shard; merge, diff and judge.

    ``spec`` is anything :meth:`repro.cluster.ClusterSpec.parse`
    accepts (a single server wraps as ``"shard0=<address>"``).  The
    collector owns one :class:`~repro.persist.remote.RemoteRepository`
    per replica — per *address*, deliberately bypassing the failover
    ladder, because a monitor must see each replica individually.
    """

    def __init__(self, spec, timeout: float = 2.0, retries: int = 1,
                 slos: Optional[Sequence] = None,
                 max_spans: int = DEFAULT_MAX_SPANS) -> None:
        from repro.cluster import ClusterSpec
        from repro.persist.remote import RemoteRepository
        self.spec = ClusterSpec.parse(spec)
        self.slos = tuple(slos) if slos is not None else DEFAULT_SLOS
        self.max_spans = max_spans
        self._clients: Dict[str, "RemoteRepository"] = {}
        self._addresses: Dict[str, str] = {}
        self._groups: Dict[str, str] = {}
        for group in self.spec.groups:
            for index, address in enumerate(group.replicas):
                key = f"{group.name}/replica{index}"
                self._clients[key] = RemoteRepository(
                    address, local=None, timeout=timeout,
                    retries=retries, name=key)
                self._addresses[key] = str(address)
                self._groups[key] = group.name
        self.scrapes = 0
        #: latest per-target record (identity + metrics + deltas)
        self._targets: Dict[str, Dict] = {}
        #: previous scrape's metrics, for delta computation
        self._previous: Dict[str, Dict] = {}
        #: latest span-buffer entries per target (trace export reads
        #: these; they never enter canonical snapshots)
        self._spans: Dict[str, List[Dict]] = {}
        self._was_up: Dict[str, bool] = {}
        #: up/down transitions observed across scrapes
        self.reachability_flaps = 0
        #: summed client-side counters (fleet instances + publishers)
        self.client_stats: Dict[str, float] = {}

    def close(self) -> None:
        for client in self._clients.values():
            client.close()

    def target_keys(self) -> List[str]:
        return sorted(self._clients)

    # -- scraping ------------------------------------------------------------

    def scrape(self) -> Dict[str, Dict]:
        """Poll every target once; returns the per-target records
        (also retained as the collector's latest view)."""
        self.scrapes += 1
        for key in self.target_keys():
            client = self._clients[key]
            try:
                response = client.request(
                    "telemetry", telemetry_request(self.max_spans))
            except Exception as error:  # noqa: BLE001 - a dead replica
                # is a data point for the monitor, never a crash
                log.debug("telemetry scrape of %s failed: %s",
                          key, error)
                record = {"up": False, "shard": self._groups[key],
                          "role": None, "objects": None,
                          "draining": None, "metrics": {},
                          "deltas": {}}
            else:
                metrics = response.get("metrics") or {}
                record = {
                    "up": True,
                    "shard": response.get("shard_id") or
                    self._groups[key],
                    "role": response.get("role"),
                    "objects": response.get("objects"),
                    "draining": response.get("draining"),
                    "metrics": metrics,
                    "deltas": counter_deltas(
                        metrics, self._previous.get(key, {})),
                }
                self._previous[key] = metrics
                spans = response.get("spans") or {}
                self._spans[key] = list(spans.get("entries") or [])
            was_up = self._was_up.get(key)
            if was_up is not None and was_up != record["up"]:
                self.reachability_flaps += 1
            self._was_up[key] = record["up"]
            self._targets[key] = record
        return {key: self._targets[key] for key in self.target_keys()}

    def observe_client_stats(self, counters: Dict) -> None:
        """Fold one client-side counter dict (an instance's remote
        stats, the publisher's, ...) into the fleet-wide sums."""
        for key in sorted(counters):
            value = counters[key]
            if isinstance(value, bool) or \
                    not isinstance(value, (int, float)):
                continue
            self.client_stats[key] = \
                self.client_stats.get(key, 0) + value

    # -- derived views -------------------------------------------------------

    def merged_metrics(self) -> Dict:
        """The cluster-wide registry: every target's latest snapshot
        merged exactly (counters sum, histograms re-bucket)."""
        return merge_snapshots(
            record.get("metrics") or {}
            for record in self._targets.values())

    def _staleness(self) -> Tuple[int, int, Dict[str, List[int]]]:
        """(stale replicas, reachable replicas, per-group counts)."""
        by_group: Dict[str, List[int]] = {}
        for key in self.target_keys():
            record = self._targets.get(key) or {}
            if record.get("up") and \
                    isinstance(record.get("objects"), int):
                by_group.setdefault(self._groups[key],
                                    []).append(record["objects"])
        stale = total = 0
        for counts in by_group.values():
            best = max(counts)
            total += len(counts)
            stale += sum(1 for count in counts if count < best)
        return stale, total, by_group

    def indicators(self) -> Dict[str, Optional[float]]:
        """The SLO inputs, derived from the latest scrape + client
        sums.  ``pull_p99_ms`` is wall-clock (see
        :data:`WALL_CLOCK_INDICATORS`); everything else is a pure
        function of simulated state."""
        merged = self.merged_metrics()
        pull = merged.get("server_op_latency_ms{op=pull}")
        pull_p99 = histogram_percentile(pull, 99) \
            if isinstance(pull, dict) else None
        pushes = self.client_stats.get("pushes") or \
            self.client_stats.get("records_pushed") or 0
        quorum_misses = self.client_stats.get("quorum_misses", 0)
        breaker_flaps = self.client_stats.get("breaker_opens", 0) \
            + self.reachability_flaps
        stale, total, _ = self._staleness()
        # overload indicators (docs/overload.md): amplification and
        # deadline misses from the summed client counters, shed rate
        # from the merged server registries.  The labeled per-op
        # request counters spell ``server_requests{op=...}`` — the
        # brace matters, because ``server_requests_shed`` shares the
        # prefix.
        requests = self.client_stats.get("requests", 0)
        retries = self.client_stats.get("retries", 0)
        deadline_missed = \
            self.client_stats.get("deadline_exceeded", 0) + \
            self.client_stats.get("late_responses", 0)
        served = sum(value for series, value in merged.items()
                     if series.startswith("server_requests{")
                     and isinstance(value, (int, float)))
        shed = merged.get("server_requests_shed", 0)
        shed = shed if isinstance(shed, (int, float)) else 0
        return {
            "pull_p99_ms": pull_p99,
            "quorum_miss_rate": (quorum_misses / pushes
                                 if pushes else 0.0),
            "breaker_flaps": float(breaker_flaps),
            "stale_replica_ratio": (stale / total if total else 0.0),
            "retry_amplification": ((requests + retries) / requests
                                    if requests else 1.0),
            "shed_rate": (shed / served if served else 0.0),
            "deadline_miss_rate": (deadline_missed / requests
                                   if requests else 0.0),
        }

    def verdicts(self, canonical: bool = False) -> List[Dict]:
        """SLO verdicts over the current indicators; canonical mode
        drops wall-clock rules so the list byte-stabilizes."""
        verdicts = evaluate(self.indicators(), self.slos)
        if canonical:
            verdicts = [v for v in verdicts if not v["wall_clock"]]
        return verdicts

    def anomalies(self) -> List[str]:
        """Deterministic, sorted pathology statements."""
        problems: List[str] = []
        for key in self.target_keys():
            record = self._targets.get(key) or {}
            if record and not record.get("up"):
                problems.append(f"target {key} unreachable")
        stale, _, by_group = self._staleness()
        if stale:
            for group in sorted(by_group):
                counts = by_group[group]
                if len(set(counts)) > 1:
                    problems.append(
                        f"replica divergence in {group}: object "
                        f"counts {sorted(counts)}")
        breaker_opens = self.client_stats.get("breaker_opens", 0)
        if breaker_opens:
            problems.append(
                f"client breakers opened {int(breaker_opens)}x")
        if self.reachability_flaps >= 2:
            problems.append(
                f"reachability flapping: {self.reachability_flaps} "
                f"up/down transition(s)")
        return problems

    # -- spans (trace export) ------------------------------------------------

    def span_entries(self) -> List[Dict]:
        """Every target's span records, tagged with the target key and
        deterministically ordered — the server lanes + flow arrows of
        :func:`repro.fleet.export.export_fleet_trace`."""
        entries = []
        for key in self.target_keys():
            for record in self._spans.get(key, []):
                entries.append(dict(record, target=key))
        entries.sort(key=lambda r: (r.get("target", ""),
                                    r.get("trace", ""),
                                    r.get("parent", ""),
                                    r.get("span", "")))
        return entries

    # -- snapshots -----------------------------------------------------------

    @staticmethod
    def _filter_series(snapshot: Dict, canonical: bool) -> Dict:
        if not canonical:
            return dict(snapshot)
        return {series: value for series, value in snapshot.items()
                if not series.startswith(WALL_CLOCK_SERIES)}

    def snapshot(self, canonical: bool = True) -> Dict:
        """The collector's whole view as one document.

        Canonical mode is byte-deterministic for a given fleet seed:
        no addresses, no wall-clock series or verdicts, no span
        buffers (their content is deterministic but their arrival
        order is not).  Non-canonical mode is the operator view —
        everything, including latency.
        """
        targets = {}
        for key in self.target_keys():
            record = self._targets.get(key)
            if record is None:
                continue
            entry = {
                "up": record["up"],
                "shard": record["shard"],
                "role": record["role"],
                "objects": record["objects"],
                "draining": record["draining"],
                "metrics": self._filter_series(record["metrics"],
                                               canonical),
                "deltas": self._filter_series(record["deltas"],
                                              canonical),
            }
            if not canonical:
                entry["address"] = self._addresses[key]
                entry["spans"] = len(self._spans.get(key, []))
            targets[key] = entry
        indicators = self.indicators()
        if canonical:
            indicators = {name: value
                          for name, value in indicators.items()
                          if name not in WALL_CLOCK_INDICATORS}
        doc = {
            "schema": SCHEMA,
            "scrapes": self.scrapes,
            "targets": targets,
            "merged": self._filter_series(self.merged_metrics(),
                                          canonical),
            "clients": {key: self.client_stats[key]
                        for key in sorted(self.client_stats)},
            "indicators": indicators,
            "slo": self.verdicts(canonical=canonical),
            "anomalies": self.anomalies(),
        }
        return doc
