"""Cycle-attribution ledger — Eq. 1 as a per-run instrument.

The paper decomposes startup time (Eq. 1) as::

    S = M_bbt * T_bbt  +  N_bbt * E_bbt  +  M_sbt * T_sbt
        + N_sbt * E_sbt  +  N_int * E_int  (+ fixed costs)

i.e. every cycle belongs to exactly one phase: translating cold blocks,
executing BBT code, optimizing hotspots, executing SBT code, or
interpreting.  :class:`CycleLedger` enforces that accounting *by
construction*: each :meth:`CycleLedger.charge` advances the run's total
simulated-cycle clock by exactly the cycles it attributes, so

    ``sum(ledger.totals().values()) == ledger.total``

always holds — no cycle unattributed, none double-counted
(:meth:`conserved` asserts it; the trace smoke gate and the benches
check it on real runs).

On top of the phase totals the ledger keeps

* a **per-interval timeline** on a log-cycle grid (Fig. 2's x-axis), so
  a single run yields the startup transient phase-by-phase;
* **per-block attributions** for the translation phases, answering
  "where did the BBT overhead go" with a top-N profile.

Both the functional runtime (:mod:`repro.vmm.runtime`, cost-model
weighted) and the timing simulator (:mod:`repro.timing.startup_sim`,
exact event costs) feed one of these; the ledger is also the tracer's
monotonic clock, which is what makes traced runs deterministic.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

log = logging.getLogger("repro.obs")

#: Map of ledger categories to the Eq. 1 term they instantiate.  The
#: timing simulator's extra categories (cold-miss stalls, disk load,
#: repository re-materialization) are fixed costs outside the five
#: M/N·T/E products; they map to labeled overhead terms so the Eq. 1
#: view still sums to the run total.
EQ1_PHASES: Dict[str, str] = {
    # functional-runtime categories
    "bbt_translation": "M_bbt*T_bbt",
    "bbt_execution": "N_bbt*E_bbt",
    "sbt_translation": "M_sbt*T_sbt",
    "sbt_execution": "N_sbt*E_sbt",
    "interpretation": "N_int*E_int",
    "x86_mode": "N_x86*E_x86",
    # timing-simulator categories
    "bbt_emulation": "N_bbt*E_bbt",
    "sbt_emulation": "N_sbt*E_sbt",
    "interp": "N_int*E_int",
    "execution": "N_ref*E_ref",
    "cold_miss": "overhead:cold_miss",
    "disk_load": "overhead:disk_load",
    "persist_load": "overhead:persist_load",
}


@dataclass(frozen=True)
class RuntimePhaseCosts:
    """Per-instruction cycle weights for the functional runtime's clock.

    The functional VM executes micro-ops, not cycles; the ledger turns
    its work into a simulated-cycle clock with the same constants the
    timing layer charges: one cycle per native micro-op, the measured
    BBT/SBT translation costs, and the interpreter CPI.
    """

    bbt_translate_cpi: float = 83.0
    sbt_translate_cpi: float = 1500.0
    interp_cpi: float = 45.0
    x86_mode_cpi: float = 1.0
    persist_load_cpi: float = 12.0
    uop_cycles: float = 1.0


def runtime_phase_costs(costs=None) -> RuntimePhaseCosts:
    """Derive runtime clock weights from a
    :class:`~repro.core.config.TranslationCosts` (None = defaults)."""
    if costs is None:
        return RuntimePhaseCosts()
    return RuntimePhaseCosts(
        bbt_translate_cpi=costs.bbt_cycles_per_instr or 83.0,
        sbt_translate_cpi=costs.sbt_cycles_per_instr or 1500.0,
        interp_cpi=costs.interp_cycles_per_instr or 45.0,
        persist_load_cpi=costs.persist_load_cycles_per_instr,
    )


class CycleLedger:
    """Conservative cycle accounting with timeline and block profiles."""

    def __init__(self, first_interval: float = 100.0,
                 intervals_per_decade: int = 2) -> None:
        self.total = 0.0
        self._phases: Dict[str, float] = {}
        #: category -> {block addr -> cycles} (translation phases only
        #: unless callers pass blocks for execution too)
        self._blocks: Dict[str, Dict[int, float]] = {}
        # log-grid timeline state
        self._first_interval = first_interval
        self._ratio = 10.0 ** (1.0 / intervals_per_decade)
        self._interval_end = first_interval
        self._intervals: List[Dict[str, float]] = [{}]
        self.charges = 0

    # -- recording -----------------------------------------------------------

    def charge(self, category: str, cycles: float,
               block: Optional[int] = None) -> None:
        """Attribute ``cycles`` to ``category``, advancing the clock."""
        if cycles <= 0:
            return
        self.charges += 1
        self._phases[category] = self._phases.get(category, 0.0) + cycles
        if block is not None:
            per_block = self._blocks.setdefault(category, {})
            per_block[block] = per_block.get(block, 0.0) + cycles
        # split the charge across log-grid interval boundaries so the
        # timeline is piecewise-exact (same idea as timing.sampler)
        remaining = cycles
        while remaining > 0:
            room = self._interval_end - self.total
            if remaining < room:
                step = remaining
            else:
                step = room
            bucket = self._intervals[-1]
            bucket[category] = bucket.get(category, 0.0) + step
            self.total += step
            remaining -= step
            if self.total >= self._interval_end:
                self._interval_end *= self._ratio
                self._intervals.append({})

    # -- views ---------------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        """Per-category cycle totals (insertion-independent order)."""
        return dict(sorted(self._phases.items()))

    def eq1_breakdown(self) -> Dict[str, float]:
        """Totals folded onto the paper's Eq. 1 terms."""
        folded: Dict[str, float] = {}
        for category, cycles in self._phases.items():
            term = EQ1_PHASES.get(category, f"other:{category}")
            folded[term] = folded.get(term, 0.0) + cycles
        return dict(sorted(folded.items()))

    def conserved(self, tolerance: float = 1e-6) -> bool:
        """Whether attributed cycles exactly cover the clock total."""
        attributed = sum(self._phases.values())
        scale = max(self.total, 1.0)
        return abs(attributed - self.total) <= tolerance * scale

    def timeline(self) -> List[Dict]:
        """Per-interval phase breakdown over the log-cycle grid.

        Each entry is ``{"start": c0, "end": c1, "phases": {...}}``;
        intervals with no attributed cycles are omitted.  This is the
        Fig. 2 startup transient of *this* run, phase by phase.
        """
        out: List[Dict] = []
        start = 0.0
        end = self._first_interval
        for bucket in self._intervals:
            if bucket:
                out.append({"start": start,
                            "end": min(end, self.total),
                            "phases": dict(sorted(bucket.items()))})
            start, end = end, end * self._ratio
        return out

    def top_blocks(self, category: str = "bbt_translation",
                   limit: int = 10) -> List[Tuple[int, float]]:
        """The blocks that consumed the most cycles in ``category``."""
        per_block = self._blocks.get(category, {})
        ranked = sorted(per_block.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

    def block_categories(self) -> List[str]:
        return sorted(self._blocks)

    def to_dict(self) -> Dict:
        """JSON-friendly dump (trace export embeds this)."""
        return {
            "total_cycles": self.total,
            "phase_cycles": self.totals(),
            "eq1": self.eq1_breakdown(),
            "conserved": self.conserved(),
            "timeline": self.timeline(),
            "top_blocks": {
                category: [{"block": f"{addr:#x}", "cycles": cycles}
                           for addr, cycles in self.top_blocks(category)]
                for category in self.block_categories()
            },
        }

    def format(self, title: str = "cycle attribution") -> str:
        """Human-readable phase table."""
        lines = [title, "-" * len(title)]
        total = max(self.total, 1e-12)
        for category, cycles in self.totals().items():
            term = EQ1_PHASES.get(category, "-")
            lines.append(f"  {category:18s} {cycles:14.0f} cycles "
                         f"({100.0 * cycles / total:5.1f}%)  [{term}]")
        lines.append(f"  {'total':18s} {self.total:14.0f} cycles "
                     f"({'conserved' if self.conserved() else 'LEAK'})")
        return "\n".join(lines)


def breakeven_interval(total_cycles: float,
                       intervals_per_decade: int = 2) -> int:
    """Index of the timeline interval containing ``total_cycles``."""
    if total_cycles <= 0:
        return 0
    return max(0, int(math.floor(
        math.log10(total_cycles / 100.0) * intervals_per_decade)) + 1)
