"""The metrics registry — single source of truth for runtime counters.

Before this module, every statistic the VM reported lived in a
hand-maintained instance attribute (``self.dispatches += 1``) that
``stats()`` and ``ExecutionReport`` copied by name; nothing stopped the
two surfaces from silently diverging.  Now each of those attributes is a
:func:`metric_field` descriptor backed by a labeled series in a
:class:`MetricsRegistry`, so incrementing the attribute *is* updating
the registry, and both reporting surfaces read the same storage
(``tests/test_metrics.py`` pins the equivalence field by field).

Three series kinds:

* :class:`Counter` — monotone event count (``inc``);
* :class:`Gauge`  — point-in-time level (``set``), used for values
  derived at snapshot time (quarantine depth, cache occupancy);
* :class:`Histogram` — power-of-two bucketed distribution
  (``observe``), used for translation sizes.

Registry snapshots are plain dicts keyed ``name`` or
``name{label=value,...}`` and support :meth:`MetricsRegistry.diff` for
before/after comparisons.  Everything here is deterministic and
allocation-light; the hot dispatch path touches one cached series
object per increment.
"""

from __future__ import annotations

import logging
import math
from typing import Dict, Iterator, Optional, Tuple

log = logging.getLogger("repro.obs")


def series_key(name: str, labels: Dict[str, str]) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}"
                     for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Series:
    """Common identity for one labeled time series."""

    kind = "series"
    __slots__ = ("name", "labels", "key")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.key = series_key(name, labels)


class Counter(Series):
    """Monotone counter (``set`` exists only for descriptor rebinds)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value) -> None:
        self.value = value

    def snapshot(self):
        return self.value


class Gauge(Series):
    """Point-in-time level."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        super().__init__(name, labels)
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def snapshot(self):
        return self.value


class Histogram(Series):
    """Power-of-two bucketed distribution of observed values."""

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        super().__init__(name, labels)
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket upper bound (power of two) -> observation count
        self.buckets: Dict[int, int] = {}

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bound = 1
        while bound < value:
            bound <<= 1
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Deterministic q-th percentile estimate from the pow2 buckets.

        Walks the cumulative bucket counts and returns the upper bound
        of the bucket containing the q-th observation, clamped to the
        recorded ``max`` (so p99 never overshoots the data) and floored
        at the recorded ``min``.  Monotone in ``q`` by construction —
        the fleet report's p50 <= p95 <= p99 invariant rests on this.
        Returns ``None`` for an empty histogram.
        """
        if not self.count:
            return None
        target = max(1, math.ceil(self.count * q / 100.0))
        seen = 0
        for bound in sorted(self.buckets):
            seen += self.buckets[bound]
            if seen >= target:
                return float(min(max(bound, self.min), self.max))
        return float(self.max)      # pragma: no cover - bucket invariant

    def snapshot(self) -> Dict:
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max, "mean": self.mean,
                "buckets": dict(sorted(self.buckets.items()))}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create registry of labeled series."""

    def __init__(self) -> None:
        self._series: Dict[Tuple, Series] = {}

    def _get(self, kind: str, name: str, labels: Dict[str, str]) -> Series:
        key = (name, tuple(sorted(labels.items())))
        series = self._series.get(key)
        if series is None:
            series = _KINDS[kind](name, labels)
            self._series[key] = series
        elif series.kind != kind:
            raise TypeError(f"series {series.key!r} is a {series.kind}, "
                            f"not a {kind}")
        return series

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    def __iter__(self) -> Iterator[Series]:
        return iter(sorted(self._series.values(),
                           key=lambda series: series.key))

    def __len__(self) -> int:
        return len(self._series)

    def value(self, name: str, **labels):
        """Current value of a series, or None if it does not exist."""
        key = (name, tuple(sorted(labels.items())))
        series = self._series.get(key)
        if series is None:
            return None
        return series.snapshot()

    def snapshot(self) -> Dict[str, object]:
        """Flat ``{series_key: value}`` dict (histograms nest a dict)."""
        return {series.key: series.snapshot() for series in self}

    def diff(self, before: Dict[str, object]) -> Dict[str, object]:
        """Numeric series that changed since ``before`` (a snapshot).

        Returns ``{series_key: delta}``; histogram series are compared
        by observation count.  Series absent from ``before`` diff
        against zero.
        """
        deltas: Dict[str, object] = {}
        for key, value in self.snapshot().items():
            old = before.get(key, 0)
            if isinstance(value, dict):          # histogram
                value = value["count"]
                old = old["count"] if isinstance(old, dict) else old
            if value != old:
                deltas[key] = value - old
        return deltas


class metric_field:
    """Descriptor routing an int attribute through the owner's registry.

    The owning object must expose ``self.metrics`` (a
    :class:`MetricsRegistry`) before the first access, and may expose
    ``self._metric_labels`` (a dict) for per-instance label sets —
    that is how the two :class:`~repro.translator.code_cache.CodeCache`
    instances share one ``code_cache_flushes`` series name with
    ``cache=bbt`` / ``cache=sbt`` labels.

    Reads return the plain number, writes store it, so existing
    ``self.counter += 1`` call sites (and every external
    ``runtime.dispatches``-style reader) keep working unchanged while
    the registry becomes the single source of truth.
    """

    def __init__(self, name: Optional[str] = None,
                 kind: str = "counter") -> None:
        self.name = name
        self.kind = kind

    def __set_name__(self, owner, attr: str) -> None:
        self.attr = attr
        if self.name is None:
            self.name = attr
        self._cache_slot = f"_series_{attr}"

    def _series(self, obj) -> Series:
        series = obj.__dict__.get(self._cache_slot)
        if series is None:
            labels = getattr(obj, "_metric_labels", None) or {}
            series = obj.metrics._get(self.kind, self.name, labels)
            obj.__dict__[self._cache_slot] = series
        return series

    def __get__(self, obj, owner=None):
        if obj is None:
            return self
        return self._series(obj).value

    def __set__(self, obj, value) -> None:
        self._series(obj).set(value)
