"""Observability for the translation stack — the VM's instrument panel.

The paper's whole argument is a *time-attribution* claim: startup cycles
split among interpretation, BBT translation, BBT-code execution, SBT
translation and native hotspot execution (Eq. 1, Figs. 2/8/10).  This
package makes that attribution a first-class, per-run artifact instead
of a bench-only aggregate:

* :mod:`repro.obs.metrics` — the metrics registry (counters, gauges,
  histograms with labeled series) that backs every counter surfaced by
  ``ExecutionReport`` and ``stats()``;
* :mod:`repro.obs.ledger` — the cycle-attribution ledger: every
  simulated cycle lands in exactly one Eq. 1 phase bucket, with a
  per-interval timeline and per-block translation-overhead profiles;
* :mod:`repro.obs.tracer` — the typed lifecycle event tracer plus the
  bounded flight recorder dumped on runtime faults;
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON export
  and the checked-in trace schema validator;
* :mod:`repro.obs.logutil` — the ``repro.*`` logging tree configuration
  used by the CLI's ``--log-level`` flag;
* :mod:`repro.obs.telemetry` — wire-propagated trace contexts, the
  server-side span buffer and exact pow2-snapshot merging (the
  distributed half of tracing);
* :mod:`repro.obs.collector` — the cluster-wide telemetry scraper
  driving ``repro monitor`` and the fleet ``--collect`` axis;
* :mod:`repro.obs.slo` — declarative SLO rules evaluated into
  pass/warn/fail verdicts with burn accounting;
* :mod:`repro.obs.trajectory` — the append-only benchmark history and
  the ``repro bench diff`` regression gate.

Tracing is off by default and the hooks are guarded (``tracer is None``
checks on dispatch paths), so a non-traced run pays near-zero cost;
``tools/trace_smoke.py`` gates that.  Enabled tracing is deterministic:
timestamps come from the simulated-cycle clock, never the wall clock,
so the same workload and seed produce a byte-identical event stream.
"""

from repro.obs.ledger import (
    EQ1_PHASES,
    CycleLedger,
    RuntimePhaseCosts,
    runtime_phase_costs,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_field,
)
from repro.obs.tracer import EventTracer, TraceEvent
from repro.obs.export import (
    export_trace,
    load_trace_schema,
    validate_trace,
)
from repro.obs.logutil import configure_logging
from repro.obs.telemetry import (
    SpanBuffer,
    TraceContext,
    histogram_percentile,
    merge_histogram,
    merge_snapshots,
)
from repro.obs.collector import ClusterCollector
from repro.obs.slo import DEFAULT_SLOS, SLORule, evaluate, load_slo_file
from repro.obs.trajectory import append_row, bench_diff, history_row

__all__ = [
    "ClusterCollector",
    "Counter",
    "CycleLedger",
    "DEFAULT_SLOS",
    "EQ1_PHASES",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RuntimePhaseCosts",
    "SLORule",
    "SpanBuffer",
    "TraceContext",
    "TraceEvent",
    "append_row",
    "bench_diff",
    "configure_logging",
    "evaluate",
    "export_trace",
    "histogram_percentile",
    "history_row",
    "load_slo_file",
    "load_trace_schema",
    "merge_histogram",
    "merge_snapshots",
    "metric_field",
    "runtime_phase_costs",
    "validate_trace",
]
