"""Wire-propagated trace context, server span capture and exact
metric merging — the building blocks of the distributed observability
plane (docs/observability.md, "Distributed tracing & monitoring").

Three pieces live here because they share one contract: everything is
a pure function of simulated state — ids are derived by hashing,
timestamps are the client's simulated-cycle clock, and nothing reads
a wall clock or an RNG — so the same fleet seed yields byte-identical
telemetry on every host.

* :class:`TraceContext` — the deterministic (trace id, span id, boot
  rank) triple clients stamp into every protocol frame as
  ``trace_ctx``.  A remote client derives one child per request, the
  server opens its own child span under that, and the two halves meet
  again in :func:`repro.fleet.export.export_fleet_trace` as Perfetto
  flow arrows.
* :class:`SpanBuffer` — the server-side bounded buffer of child spans
  opened under a propagated context.  The context manager guarantees
  spans close on every path (exceptions mark them ``error``), and
  names are restricted to EVENT_TYPES slice entries; reprolint's
  OBS003 enforces both properties at call sites.
* exact pow2-histogram merging — re-merging per-replica
  :class:`~repro.obs.metrics.Histogram` snapshots into fleet-wide
  distributions without losing an observation: buckets are summed
  bound-by-bound, so :func:`histogram_percentile` over the merge
  answers exactly what one histogram observing everything would.

The wire ``telemetry`` op (docs/cache_server.md) carries all of it:
:func:`telemetry_request` builds the request payload, the server
answers with its metrics-registry snapshot plus this buffer, and
:class:`repro.obs.collector.ClusterCollector` does the merging.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.tracer import EVENT_TYPES

#: Version stamped into every ``trace_ctx`` payload and ``telemetry``
#: request; servers reject frames from a future protocol rather than
#: misreading them.
TELEMETRY_VERSION = 1

#: Default cap on span records a server keeps (oldest evicted first).
SPAN_BUFFER_CAPACITY = 1024

#: Default cap on span records returned by one ``telemetry`` answer.
DEFAULT_MAX_SPANS = 256


def derive_span_id(trace_id: str, parent: str, seq) -> str:
    """A span id is a pure hash of (trace, parent span, sequence) —
    no clock, no RNG, so retries and reruns derive the same id."""
    text = f"{trace_id}:{parent}:{seq}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class TraceContext:
    """One hop of a distributed trace, small enough to ride in every
    protocol frame.  ``ts`` is the *client's* simulated-cycle clock at
    stamping time; servers have no simulated clock of their own, so
    their child spans inherit it."""

    trace_id: str
    span_id: str
    boot_rank: int = 0
    ts: float = 0.0

    @classmethod
    def for_boot(cls, instance_seed: int, rank: int,
                 lane: str = "boot") -> "TraceContext":
        """The root context for one fleet instance.  The trace id
        depends only on (seed, rank) so an instance's boot lane and
        the engine's publish lane (``lane="publish"``) share a trace
        while their root spans stay distinct."""
        text = f"fleet:{int(instance_seed)}:{int(rank)}"
        trace_id = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        return cls(trace_id, derive_span_id(trace_id, lane, 0),
                   int(rank))

    def child(self, seq, ts: float = 0.0) -> "TraceContext":
        """Derive the context for one request (or sub-lane): same
        trace, new span parented under this one."""
        return TraceContext(
            self.trace_id,
            derive_span_id(self.trace_id, self.span_id, seq),
            self.boot_rank, float(ts))

    def to_wire(self) -> Dict:
        return {"v": TELEMETRY_VERSION, "trace": self.trace_id,
                "span": self.span_id, "rank": self.boot_rank,
                "ts": self.ts}

    @classmethod
    def from_wire(cls, payload) -> Optional["TraceContext"]:
        """Parse a ``trace_ctx`` frame field; ``None`` for anything
        malformed or from an unknown version (the request still runs,
        it just goes untraced — tracing must never break serving)."""
        if not isinstance(payload, dict):
            return None
        if payload.get("v") != TELEMETRY_VERSION:
            return None
        trace, span = payload.get("trace"), payload.get("span")
        rank, ts = payload.get("rank", 0), payload.get("ts", 0.0)
        if not isinstance(trace, str) or not isinstance(span, str):
            return None
        if isinstance(rank, bool) or not isinstance(rank, int):
            return None
        if isinstance(ts, bool) or not isinstance(ts, (int, float)):
            return None
        return cls(trace, span, rank, float(ts))


class SpanBuffer:
    """Bounded, thread-safe buffer of server-side span records.

    :meth:`span` is the only way in: a context manager that closes the
    span on every path — normal exit records ``status="ok"``, an
    exception records ``status="error"`` and re-raises — and rejects
    names outside the EVENT_TYPES slice taxonomy, so a leaked or
    mis-named server span is impossible by construction (and OBS003
    lints the call sites to keep it that way)."""

    def __init__(self, capacity: int = SPAN_BUFFER_CAPACITY,
                 event_types: Optional[Dict[str, str]] = None) -> None:
        self.capacity = max(1, int(capacity))
        self._event_types = (EVENT_TYPES if event_types is None
                             else event_types)
        self._lock = threading.Lock()
        self._entries: deque = deque()
        self.opened = 0
        self.dropped = 0

    @contextmanager
    def span(self, name: str, context: TraceContext, **args):
        """Open a child span under ``context``; yields the mutable
        record so the handler can annotate it (e.g. flip ``status``)."""
        if self._event_types.get(name) != "X":
            raise ValueError(
                f"span name {name!r} is not an EVENT_TYPES slice; "
                f"register it in repro.obs.tracer first")
        record = {
            "name": name,
            "trace": context.trace_id,
            "parent": context.span_id,
            "span": derive_span_id(context.trace_id, context.span_id,
                                   "server"),
            "rank": context.boot_rank,
            "ts": context.ts,
            "status": "ok",
        }
        for key in sorted(args):
            record[key] = args[key]
        try:
            yield record
        except BaseException:
            record["status"] = "error"
            raise
        finally:
            with self._lock:
                self.opened += 1
                if len(self._entries) >= self.capacity:
                    self._entries.popleft()
                    self.dropped += 1
                self._entries.append(record)

    def entries(self, limit: Optional[int] = None
                ) -> Tuple[List[Dict], int]:
        """The newest ``limit`` records plus how many older ones the
        cap cut off (0 when everything fit)."""
        with self._lock:
            records = list(self._entries)
        if limit is None:
            return records, 0
        limit = max(0, int(limit))
        if limit >= len(records):
            return records, 0
        return records[len(records) - limit:], len(records) - limit

    def to_wire(self, max_spans: Optional[int] = None) -> Dict:
        """The ``spans`` section of a ``telemetry`` answer."""
        entries, truncated = self.entries(max_spans)
        with self._lock:
            opened, dropped = self.opened, self.dropped
        return {"capacity": self.capacity, "opened": opened,
                "dropped": dropped, "truncated": truncated,
                "entries": entries}


def telemetry_request(max_spans: int = DEFAULT_MAX_SPANS) -> Dict:
    """Payload for the wire ``telemetry`` op (the transport adds the
    ``op`` key itself)."""
    return {"v": TELEMETRY_VERSION, "max_spans": int(max_spans)}


# --------------------------------------------------------------------
# Exact snapshot merging.  A Histogram snapshot is
# {count, total, min, max, mean, buckets: {bound: n}}; over JSON the
# bucket bounds arrive as strings, so every reader normalizes.


def is_histogram_snapshot(value) -> bool:
    return isinstance(value, dict) and "buckets" in value


def _empty_histogram() -> Dict:
    return {"count": 0, "total": 0.0, "min": None, "max": None,
            "mean": 0.0, "buckets": {}}


def merge_histogram(snapshots: Iterable[Dict]) -> Dict:
    """Merge pow2-histogram snapshots exactly: buckets sum bound by
    bound, so the merge is indistinguishable from one histogram that
    observed every sample itself."""
    buckets: Dict[int, int] = {}
    count, total = 0, 0.0
    lo: Optional[float] = None
    hi: Optional[float] = None
    for snapshot in snapshots:
        if not snapshot or not snapshot.get("count"):
            continue
        count += int(snapshot["count"])
        total += float(snapshot.get("total", 0.0))
        s_min, s_max = snapshot.get("min"), snapshot.get("max")
        if s_min is not None:
            lo = s_min if lo is None else min(lo, s_min)
        if s_max is not None:
            hi = s_max if hi is None else max(hi, s_max)
        for bound, n in snapshot.get("buckets", {}).items():
            bound = int(bound)
            buckets[bound] = buckets.get(bound, 0) + int(n)
    if not count:
        return _empty_histogram()
    return {"count": count, "total": total, "min": lo, "max": hi,
            "mean": total / count,
            "buckets": {bound: buckets[bound]
                        for bound in sorted(buckets)}}


def histogram_percentile(snapshot: Dict, q: float) -> Optional[float]:
    """:meth:`repro.obs.metrics.Histogram.percentile`, replayed over a
    (possibly merged, possibly JSON-round-tripped) snapshot."""
    import math
    count = int(snapshot.get("count") or 0)
    if not count:
        return None
    target = max(1, math.ceil(count * q / 100.0))
    buckets = {int(bound): int(n)
               for bound, n in snapshot.get("buckets", {}).items()}
    seen = 0
    for bound in sorted(buckets):
        seen += buckets[bound]
        if seen >= target:
            return float(min(max(bound, snapshot["min"]),
                             snapshot["max"]))
    return float(snapshot["max"])


def merge_snapshots(snapshots: Iterable[Dict]) -> Dict:
    """Merge whole metrics-registry snapshots (flat series → value):
    numeric series sum, histogram series merge exactly."""
    merged: Dict = {}
    histograms: Dict[str, List[Dict]] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for series, value in snapshot.items():
            if is_histogram_snapshot(value):
                histograms.setdefault(series, []).append(value)
            else:
                merged[series] = merged.get(series, 0) + value
    for series, parts in histograms.items():
        merged[series] = merge_histogram(parts)
    return {series: merged[series] for series in sorted(merged)}


def counter_deltas(current: Dict, previous: Dict) -> Dict:
    """Per-scrape deltas of the numeric series (histograms and new
    gauges ride as-is through the merged snapshot; a reset — e.g. a
    replica restart — clamps at zero rather than going negative)."""
    deltas: Dict = {}
    for series, value in current.items():
        if is_histogram_snapshot(value):
            continue
        before = previous.get(series, 0)
        if is_histogram_snapshot(before):
            before = 0
        deltas[series] = max(0, value - before)
    return {series: deltas[series] for series in sorted(deltas)}
