"""Anti-entropy repair: diff replica manifests, re-replicate the gaps.

Replicas drift: a replica misses pushes while partitioned, a
below-quorum write lands on one sibling only, disk rot eats objects.
:func:`anti_entropy` walks every shard group and, per (config, image)
manifest pair:

1. pulls each reachable replica's records and screens every one
   through :func:`~repro.persist.format.validate_record` — the same
   structural screen ``fsck`` applies on disk — so a corrupt replica
   can never *spread* damage through repair;
2. computes the merged union of the surviving records (keyed by
   content address, exactly the union the server's ``merge=true``
   manifest semantics converge on);
3. pushes each replica the keys it is missing (a ``merge`` push, so
   repair composes with live writers), and re-verifies convergence
   from the manifests' key lists.

The pass is read-mostly, idempotent, and safe to run against a live
cluster; replicas that stay unreachable are reported, not fatal — the
next pass heals them after restart.  ``repro cluster repair`` and the
smoke/chaos gates drive this.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cluster.topology import ClusterSpec
from repro.persist.format import PersistFormatError, validate_record
from repro.persist.remote import RemoteRepository

log = logging.getLogger("repro.cluster")


@dataclass
class GroupRepair:
    """Repair outcome for one shard group."""

    group: str
    pairs: int = 0
    #: replica address -> records re-replicated onto it
    re_replicated: Dict[str, int] = field(default_factory=dict)
    unreachable: List[str] = field(default_factory=list)
    corrupt_discarded: int = 0
    #: every reachable replica's manifests now list the merged union
    converged: bool = True

    @property
    def total_re_replicated(self) -> int:
        return sum(self.re_replicated.values())


@dataclass
class RepairReport:
    """One anti-entropy pass over the whole cluster."""

    groups: List[GroupRepair] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(g.converged for g in self.groups)

    @property
    def total_re_replicated(self) -> int:
        return sum(g.total_re_replicated for g in self.groups)

    @property
    def unreachable(self) -> List[str]:
        return [addr for g in self.groups for addr in g.unreachable]

    def format(self) -> str:
        lines = [f"anti-entropy: {len(self.groups)} group(s), "
                 f"{self.total_re_replicated} record(s) re-replicated, "
                 f"{'converged' if self.ok else 'NOT converged'}"]
        for g in self.groups:
            detail = ", ".join(
                f"{addr}+{count}" for addr, count
                in sorted(g.re_replicated.items()) if count) or "in sync"
            line = (f"  {g.group}: {g.pairs} manifest pair(s), {detail}")
            if g.corrupt_discarded:
                line += f", {g.corrupt_discarded} corrupt discarded"
            if g.unreachable:
                line += ", unreachable: " + ", ".join(g.unreachable)
            lines.append(line)
        return "\n".join(lines)


def _manifest_pairs(client: RemoteRepository) -> Optional[Set]:
    """The (config_fp, image_fp) pairs one replica holds, from its
    stats manifests (names are ``<config_fp>__<image_fp>``)."""
    info = client.server_stats()
    if info is None:
        return None
    pairs = set()
    repository = info.get("repository") or {}
    for manifest in repository.get("manifests", ()):
        name = manifest.get("name", "")
        config_fp, sep, image_fp = name.partition("__")
        if sep and config_fp and image_fp:
            pairs.add((config_fp, image_fp))
    return pairs


def anti_entropy(spec, timeout: float = 2.0, retries: int = 1,
                 tracer=None, sleep=None) -> RepairReport:
    """One repair pass; see the module docstring for the algorithm."""
    spec = ClusterSpec.parse(spec)
    report = RepairReport()
    for group in spec.groups:
        outcome = GroupRepair(group=group.name)
        report.groups.append(outcome)
        clients = {}
        for address in group.replicas:
            kwargs = {"timeout": timeout, "retries": retries,
                      "name": group.name}
            if sleep is not None:
                kwargs["sleep"] = sleep
            clients[str(address)] = RemoteRepository(address, **kwargs)
        # discover the manifest pairs present anywhere in the group
        pairs: Set = set()
        reachable: Dict[str, RemoteRepository] = {}
        for address, client in clients.items():
            found = _manifest_pairs(client)
            if found is None:
                outcome.unreachable.append(address)
                continue
            reachable[address] = client
            pairs |= found
        if not reachable:
            outcome.converged = False
            continue
        outcome.pairs = len(pairs)
        for config_fp, image_fp in sorted(pairs):
            payload = {"config_fp": config_fp, "image_fp": image_fp}
            merged: Dict[str, Dict] = {}
            holdings: Dict[str, Set[str]] = {}
            for address, client in reachable.items():
                try:
                    response = client.request("pull", dict(payload))
                except Exception as error:  # noqa: BLE001 - a replica
                    # dying mid-pass is the expected weather here
                    log.warning("repair pull from %s failed: %s",
                                address, error)
                    if address not in outcome.unreachable:
                        outcome.unreachable.append(address)
                    continue
                held = set()
                for record in response.get("records") or []:
                    try:
                        validate_record(record)
                    except PersistFormatError:
                        outcome.corrupt_discarded += 1
                        continue
                    merged.setdefault(record["key"], record)
                    held.add(record["key"])
                holdings[address] = held
            # re-replicate each replica's missing share (merge push:
            # composes with live writers and is idempotent)
            for address, held in sorted(holdings.items()):
                missing = sorted(set(merged) - held)
                if not missing:
                    continue
                push = dict(payload)
                push["records"] = [merged[key] for key in missing]
                push["merge"] = True
                # repair pushes may overwrite an existing-but-corrupt
                # object file (a plain push would skip it as a dedup)
                push["repair"] = True
                try:
                    reachable[address].request("push", push)
                except Exception as error:  # noqa: BLE001 - same
                    # weather as above; the next pass retries
                    log.warning("repair push to %s failed: %s",
                                address, error)
                    outcome.converged = False
                    continue
                outcome.re_replicated[address] = \
                    outcome.re_replicated.get(address, 0) + len(missing)
                if tracer is not None:
                    tracer.instant("cluster.repair", group=group.name,
                                   address=address,
                                   records=len(missing))
            # convergence check: every reachable replica's manifest
            # must now cover the merged union (a replica may keep
            # dangling entries for keys *no* replica holds a valid
            # copy of — nothing can re-replicate those, and loads
            # skip them exactly like the single store does)
            want = set(merged)
            for address in sorted(holdings):
                try:
                    response = reachable[address].request(
                        "manifest", {**payload, "keys": True})
                except Exception as error:  # noqa: BLE001 - replica
                    # died between repair and re-check
                    log.warning("repair re-check of %s failed: %s",
                                address, error)
                    outcome.converged = False
                    continue
                if want - set(response.get("keys") or []):
                    outcome.converged = False
        if outcome.unreachable:
            outcome.converged = False
    return report
