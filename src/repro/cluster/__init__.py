"""Fault-tolerant translation-cache cluster (the fleet-grade tier).

The single-socket cache server of :mod:`repro.cacheserver` scales out
here: content-addressed objects are sharded across N server processes
by a consistent-hash ring (:mod:`repro.cluster.ring`), each shard group
is replicated R ways (:mod:`repro.cluster.topology`), and the
cluster-aware client (:mod:`repro.cluster.client`) degrades replica →
other replica → local cache → cold translation — never raising into
the VM, mirroring the single-server contract.  Replicas converge
through deterministic manifest merging (sorted union of
verifier-screened entries) and the anti-entropy repair pass
(:mod:`repro.cluster.repair`).

See ``docs/cluster.md`` for topology, merge semantics, the failover
ladder and the fault classes that exercise every rung.
"""

from repro.cluster.client import ClusterRepository, ClusterStats
from repro.cluster.manager import LocalCluster
from repro.cluster.repair import RepairReport, anti_entropy
from repro.cluster.ring import HashRing
from repro.cluster.topology import ClusterSpec, ShardGroup

__all__ = [
    "ClusterRepository",
    "ClusterSpec",
    "ClusterStats",
    "HashRing",
    "LocalCluster",
    "RepairReport",
    "ShardGroup",
    "anti_entropy",
]
