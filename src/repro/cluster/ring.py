"""Consistent-hash ring: content keys -> shard groups.

Each shard group owns ``vnodes`` points on a 32-bit ring; a content key
routes to the group owning the first point at or after the key's own
hash point (wrapping).  Virtual nodes smooth the key distribution so
three groups each hold roughly a third of any object population, and
consistent hashing keeps reshuffling minimal when the group set
changes: adding one group moves only the keys landing in its new arcs.

Everything is derived from SHA-1 of stable strings — no RNG, no wall
clock — so the same topology always routes the same key to the same
group on every host (the determinism contract the cluster's
byte-stable reports and chaos replays rest on).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence

DEFAULT_VNODES = 64


def _point(token: str) -> int:
    """Stable 32-bit ring position for one token."""
    return int.from_bytes(
        hashlib.sha1(token.encode()).digest()[:4], "big")


class HashRing:
    """Consistent-hash routing of content keys across shard groups."""

    def __init__(self, groups: Sequence[str],
                 vnodes: int = DEFAULT_VNODES) -> None:
        if not groups:
            raise ValueError("a hash ring needs at least one group")
        if len(set(groups)) != len(groups):
            raise ValueError(f"duplicate group names in {groups!r}")
        self.groups = tuple(groups)
        self.vnodes = max(1, vnodes)
        points = []
        for group in self.groups:
            for vnode in range(self.vnodes):
                points.append((_point(f"{group}#{vnode}"), group))
        # ties (vanishingly rare) break by group name for determinism
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [group for _, group in points]

    def group_for(self, key: str) -> str:
        """The shard group owning one content key."""
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0           # wrap past the highest point
        return self._owners[index]

    def partition(self, keys: Sequence[str]) -> Dict[str, List[str]]:
        """Split keys by owning group (groups with no keys omitted);
        each group's list keeps the caller's key order."""
        buckets: Dict[str, List[str]] = {}
        for key in keys:
            buckets.setdefault(self.group_for(key), []).append(key)
        return buckets
