"""Cluster topology: shard groups, replica sets, and the spec format.

A :class:`ClusterSpec` names the whole cluster: an ordered tuple of
:class:`ShardGroup` entries, each binding a group name to its replica
addresses (any form :func:`repro.persist.remote.parse_address`
accepts).  The spec travels three ways:

* **spec string** — ``shard0=127.0.0.1:7001,127.0.0.1:7002;shard1=…``
  (groups ``;``-separated, replicas ``,``-separated) for CLI flags;
* **dict** — :meth:`ClusterSpec.to_dict` / :meth:`from_dict`, the
  picklable form the fleet engine ships to process pools and the JSON
  form ``@file`` CLI arguments load;
* **in process** — :class:`~repro.cluster.manager.LocalCluster` builds
  one directly from the servers it spawns.

The group *order* in a spec is part of cluster identity: clients union
pull results in sorted-group order and the ring hashes group names, so
two clients holding the same spec always agree on routing and record
precedence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cluster.ring import DEFAULT_VNODES, HashRing


@dataclass(frozen=True)
class ShardGroup:
    """One shard: a name plus the replica addresses holding its data."""

    name: str
    replicas: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("shard group needs a name")
        if not self.replicas:
            raise ValueError(
                f"shard group {self.name!r} has no replicas")
        if not isinstance(self.replicas, tuple):
            object.__setattr__(self, "replicas", tuple(self.replicas))


@dataclass(frozen=True)
class ClusterSpec:
    """The full cluster shape: ordered shard groups + ring fan-out."""

    groups: Tuple[ShardGroup, ...]
    vnodes: int = DEFAULT_VNODES

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("cluster spec has no shard groups")
        if not isinstance(self.groups, tuple):
            object.__setattr__(self, "groups", tuple(self.groups))
        names = [group.name for group in self.groups]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard group names in {names}")

    @property
    def replication(self) -> int:
        """The smallest replica count across groups (the R the cluster
        can actually promise)."""
        return min(len(group.replicas) for group in self.groups)

    def ring(self) -> HashRing:
        return HashRing([group.name for group in self.groups],
                        vnodes=self.vnodes)

    def group(self, name: str) -> ShardGroup:
        for group in self.groups:
            if group.name == name:
                return group
        raise KeyError(f"no shard group {name!r} in this spec")

    # -- interchange ---------------------------------------------------------

    @classmethod
    def parse(cls, spec) -> "ClusterSpec":
        """Coerce a spec string / dict / ClusterSpec into a spec."""
        if isinstance(spec, ClusterSpec):
            return spec
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        if not isinstance(spec, str) or not spec.strip():
            raise ValueError(f"unusable cluster spec {spec!r}")
        groups = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            name, sep, addresses = part.partition("=")
            if not sep or not name.strip():
                raise ValueError(
                    f"unusable shard group {part!r} "
                    f"(want name=addr[,addr...])")
            replicas = tuple(addr.strip()
                             for addr in addresses.split(",")
                             if addr.strip())
            groups.append(ShardGroup(name=name.strip(),
                                     replicas=replicas))
        return cls(groups=tuple(groups))

    @classmethod
    def from_dict(cls, data: Dict) -> "ClusterSpec":
        groups = tuple(
            ShardGroup(name=entry["name"],
                       replicas=tuple(entry["replicas"]))
            for entry in data.get("groups", ()))
        return cls(groups=groups,
                   vnodes=int(data.get("vnodes", DEFAULT_VNODES)))

    def to_dict(self) -> Dict:
        return {
            "groups": [{"name": group.name,
                        "replicas": list(group.replicas)}
                       for group in self.groups],
            "vnodes": self.vnodes,
        }

    def to_string(self) -> str:
        """The CLI spec-string form (round-trips through parse)."""
        return ";".join(
            f"{group.name}=" + ",".join(str(addr)
                                        for addr in group.replicas)
            for group in self.groups)

    def format(self) -> str:
        lines = [f"cluster: {len(self.groups)} shard group(s), "
                 f"replication {self.replication}, "
                 f"{self.vnodes} vnodes/group"]
        for group in self.groups:
            lines.append(f"  {group.name}: "
                         + ", ".join(str(addr)
                                     for addr in group.replicas))
        return "\n".join(lines)

    def addresses(self) -> List[str]:
        """Every replica address in spec order (smoke/health tools)."""
        return [str(addr) for group in self.groups
                for addr in group.replicas]
