"""LocalCluster — a shards x replicas grid of in-process cache servers.

Tests, the chaos tool and the fleet engine need a real cluster — real
sockets, real per-replica stores — without managing OS processes.
:class:`LocalCluster` spins up ``shards`` x ``replicas``
:class:`~repro.cacheserver.server.CacheServer` instances on loopback
TCP (port 0, kernel-assigned), each over its own repository directory
``<root>/<group>/replica<r>``, and exposes the resulting
:class:`~repro.cluster.topology.ClusterSpec`.

Failure drills are first-class: :meth:`stop_replica` hard-stops one
server (its port stays reserved in the spec, so clients see a refused
connection — the same observable as a crashed process), and
:meth:`restart_replica` brings it back on the *same* address, store
intact, so anti-entropy can heal it.  ``tools/cluster_smoke.py`` does
the genuine ``kill -9`` variant against subprocess shards; this class
is the in-process twin the deterministic gates drive.
"""

from __future__ import annotations

import logging
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.cacheserver.server import CacheServer
from repro.cluster.topology import ClusterSpec, ShardGroup

log = logging.getLogger("repro.cluster")

DEFAULT_SHARDS = 3
DEFAULT_REPLICAS = 2


class LocalCluster:
    """Spin up (and break, and heal) a whole cluster in one process."""

    def __init__(self, root, shards: int = DEFAULT_SHARDS,
                 replicas: int = DEFAULT_REPLICAS,
                 lease_timeout: float = 5.0,
                 max_conns: Optional[int] = None,
                 tracer=None,
                 max_queue_depth: Optional[int] = None,
                 shed_retry_after: float = 0.05) -> None:
        if shards < 1 or replicas < 1:
            raise ValueError(
                f"need at least 1 shard and 1 replica, got "
                f"{shards}x{replicas}")
        self.root = Path(root)
        self.shards = shards
        self.replicas = replicas
        self.lease_timeout = lease_timeout
        self.max_conns = max_conns
        self.tracer = tracer
        self.max_queue_depth = max_queue_depth
        self.shed_retry_after = shed_retry_after
        self.servers: Dict[Tuple[str, int], CacheServer] = {}
        self._started = False

    def group_name(self, shard: int) -> str:
        return f"shard{shard}"

    def repo_dir(self, group: str, index: int) -> Path:
        return self.root / group / f"replica{index}"

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> ClusterSpec:
        """Bind and start every server; returns the live spec."""
        if self._started:
            return self.spec()
        for shard in range(self.shards):
            group = self.group_name(shard)
            for index in range(self.replicas):
                server = CacheServer(
                    self.repo_dir(group, index),
                    host="127.0.0.1", port=0,
                    lease_timeout=self.lease_timeout,
                    max_conns=self.max_conns, tracer=self.tracer,
                    max_queue_depth=self.max_queue_depth,
                    shed_retry_after=self.shed_retry_after,
                    shard_id=group,
                    role="primary" if index == 0 else "replica")
                server.start()
                self.servers[(group, index)] = server
        self._started = True
        log.info("local cluster up: %dx%d under %s",
                 self.shards, self.replicas, self.root)
        return self.spec()

    def spec(self) -> ClusterSpec:
        """The cluster spec for the (started) grid.  Addresses stay
        valid across stop_replica/restart_replica — a stopped replica's
        port simply refuses connections, like a crashed process."""
        if not self._started:
            raise RuntimeError("LocalCluster.spec() before start()")
        groups = []
        for shard in range(self.shards):
            group = self.group_name(shard)
            replicas = tuple(
                self.servers[(group, index)].address
                for index in range(self.replicas))
            groups.append(ShardGroup(name=group, replicas=replicas))
        return ClusterSpec(groups=tuple(groups))

    def stop(self) -> None:
        for server in self.servers.values():
            server.stop()
        self._started = False

    # -- failure drills ------------------------------------------------------

    def server(self, group: str, index: int) -> CacheServer:
        return self.servers[(group, index)]

    def stop_replica(self, group: str, index: int) -> str:
        """Hard-stop one replica (connection-refused from now on);
        returns its address, which stays reserved in the spec."""
        server = self.servers[(group, index)]
        server.kill()
        log.info("stopped replica %s/%d at %s", group, index,
                 server.address)
        return server.address

    def restart_replica(self, group: str, index: int) -> str:
        """Bring a stopped replica back on the same address, its
        on-disk store untouched (the anti-entropy repair target)."""
        old = self.servers[(group, index)]
        old.stop()
        server = CacheServer(
            self.repo_dir(group, index),
            host=old.host, port=old.port,
            lease_timeout=self.lease_timeout,
            max_conns=self.max_conns, tracer=self.tracer,
            max_queue_depth=self.max_queue_depth,
            shed_retry_after=self.shed_retry_after,
            shard_id=group, role=old.role)
        server.start()
        self.servers[(group, index)] = server
        return server.address

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
