"""ClusterRepository — the cluster-aware shared-cache client.

To the VM this is the same duck as every other repository (``load`` /
``save`` / ``manifest_entry_count``), but behind it sits a whole
cluster: the consistent-hash ring routes each content key to a shard
group, each group is a replica set fronted by one multi-endpoint
:class:`~repro.persist.remote.RemoteRepository` (per-endpoint circuit
breakers, failover ordering, bounded retry budgets), and every failure
walks the ladder

    replica → other replica → local cache → cold translation

without ever raising into the VM.  Concretely:

* **reads** pull each group's share of the manifest from the first
  healthy replica (stale answers are discarded and the next replica
  tried) and union the records by content key — a deterministic,
  sorted union, so any subset of healthy groups produces a prefix of
  the same warm-start set.  Pulls are *hedged* (docs/overload.md):
  once a group's own pow2 latency histogram has warmed up, the primary
  replica gets a single attempt bounded by a deterministic threshold
  (``max(hedge_floor, 2 x p99)``), and a slow or failed primary is
  abandoned in favor of a hedge request to the sibling replicas —
  first valid answer wins, counted in ``hedges``/``hedge_wins``.  The
  whole group pull (primary probe + hedge + stale failovers) spends
  one shared deadline budget;
* **writes** partition records by ring group and fan out to *every*
  replica of the group with ``merge=true`` pushes (the server unions
  manifest entries, so concurrent writers and repair passes compose),
  counting a quorum per group — a below-quorum write degrades to a
  counter, never an error, because anti-entropy re-replicates later
  and the worst case is cold translation;
* **total group failure** on either path falls back to the ``local``
  repository when one was given, else the group's records are simply
  absent and the VM translates those blocks cold.

Every rung is observable — :class:`ClusterStats` counters (merged into
``CoDesignedVM.stats()["remote"]``), ``cluster.*`` tracer events, and
the per-endpoint :meth:`ClusterRepository.health_view`.  Fault classes
in :mod:`repro.faults.classes` strike the ``cluster.route`` /
``cluster.pull`` sites here (and ``cluster.replica`` inside the
endpoint engine) so chaos runs can prove the whole ladder keeps
architected results byte-identical.
"""

from __future__ import annotations

import logging
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.cluster.topology import ClusterSpec
from repro.faults.plane import fault_point
from repro.obs.metrics import MetricsRegistry
from repro.persist.deadline import Deadline
from repro.persist.remote import RemoteError, RemoteRepository, RemoteStats
from repro.persist.repository import TranslationRepository

log = logging.getLogger("repro.cluster")

#: Samples a group's pull-latency histogram needs before the hedge
#: threshold trusts its p99.  Short-lived clients (one boot pulls each
#: group about once) never warm up and keep the plain un-hedged path,
#: so per-boot byte-determinism is untouched; long-lived clients start
#: hedging once they have real latency evidence.
HEDGE_MIN_SAMPLES = 8


@dataclass
class ClusterStats:
    """Cluster-tier degradation counters (the per-rung ladder view).

    These ride alongside the summed per-group :class:`RemoteStats` in
    ``to_dict`` snapshots; the fleet report's degradation section sums
    both, so a herd boot shows exactly which rung absorbed each
    failure.
    """

    pulls: int = 0
    pushes: int = 0
    records_routed: int = 0
    #: a group's read was answered by failing over past a stale reply
    stale_replicas: int = 0
    #: a whole shard group was unreachable for one request
    group_degradations: int = 0
    #: a degraded group's records came from the local repository
    local_fallbacks: int = 0
    #: a degraded group had no local fallback: cold translation
    cold_degradations: int = 0
    #: a replicated write acked by fewer replicas than the quorum
    quorum_misses: int = 0
    #: a replicated write acked by zero replicas of a group
    push_group_failures: int = 0
    #: hedge requests issued (primary slow/failed past the threshold)
    hedges: int = 0
    #: hedges whose sibling replica answered first (won the race)
    hedge_wins: int = 0

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)


class _StatsView:
    """Merged counters with the RemoteStats ``to_dict``/``format``
    duck type (what ``CoDesignedVM.stats()['remote']`` consumes)."""

    def __init__(self, data: Dict[str, int]) -> None:
        self._data = data

    def to_dict(self) -> Dict[str, int]:
        return dict(self._data)

    def format(self) -> str:
        width = max(len(name) for name in self._data)
        return "\n".join(f"{name:<{width}}  {value}"
                         for name, value in self._data.items())


class ClusterRepository:
    """Translation repository sharded and replicated across a cluster.

    ``spec`` is anything :meth:`ClusterSpec.parse` accepts.  ``local``
    is the ladder's local-cache rung (a path or
    :class:`TranslationRepository`; optional).  ``quorum`` is the
    per-group write-ack target: ``"majority"`` (default), ``"all"``,
    or an int.  The remaining knobs are handed to each group's
    :class:`RemoteRepository` unchanged, so timeouts, deadline budgets,
    retry budgets, breaker thresholds and the injectable
    ``sleep``/``clock`` behave exactly like the single-server client.

    Hedging knobs (docs/overload.md): ``hedge_threshold`` pins the
    primary-probe latency bound in seconds; the default (None) derives
    it per group as ``max(hedge_floor, 2 x pull p99)`` from the
    client's own pow2 latency histogram once :data:`HEDGE_MIN_SAMPLES`
    pulls have been observed (before that, pulls run un-hedged).
    """

    def __init__(self, spec, local=None, quorum="majority",
                 timeout: float = 2.0, retries: int = 3,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 breaker_threshold: int = 4,
                 breaker_cooldown: float = 1.0,
                 tracer=None, sleep=time.sleep,
                 clock=time.monotonic,
                 request_budget: float = 8.0,
                 jitter_seed: int = 0,
                 hedge_threshold: Optional[float] = None,
                 hedge_floor: float = 0.05) -> None:
        self.spec = ClusterSpec.parse(spec)
        self.ring = self.spec.ring()
        if local is None or isinstance(local, TranslationRepository):
            self.local = local
        else:
            self.local = TranslationRepository(local)
        self.clients: Dict[str, RemoteRepository] = {
            group.name: RemoteRepository(
                list(group.replicas), local=None, timeout=timeout,
                retries=retries, backoff_base=backoff_base,
                backoff_cap=backoff_cap,
                breaker_threshold=breaker_threshold,
                breaker_cooldown=breaker_cooldown, tracer=tracer,
                sleep=sleep, clock=clock, name=group.name,
                request_budget=request_budget,
                jitter_seed=jitter_seed)
            for group in self.spec.groups}
        self._quorum_policy = quorum
        self.tracer = tracer
        self.trace_ctx = None
        self.cluster_stats = ClusterStats()
        self._clock = clock
        self.request_budget = request_budget
        self.hedge_threshold = hedge_threshold
        self.hedge_floor = hedge_floor
        #: per-group pull-latency pow2 histograms feeding the hedge
        #: threshold (client-private; not part of canonical snapshots)
        self._latency = MetricsRegistry()
        #: aggregated server answer for the most recent successful push
        #: (same shape as RemoteRepository.last_push; the fleet engine
        #: reads dedup-amortization curves from this)
        self.last_push: Optional[Dict] = None

    # -- plumbing ------------------------------------------------------------

    def bind_tracer(self, tracer) -> None:
        self.tracer = tracer
        for client in self.clients.values():
            client.bind_tracer(tracer)

    def bind_trace_context(self, context) -> None:
        """Attach a distributed-tracing root: each shard group's client
        gets its own child lane (derived, not shared) so per-group
        request sequence numbers cannot collide into one span id."""
        self.trace_ctx = context
        for name in sorted(self.clients):
            self.clients[name].bind_trace_context(
                context.child(f"group:{name}"))

    def _trace(self, name: str, **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, **args)

    def close(self) -> None:
        for client in self.clients.values():
            client.close()

    def quorum_for(self, group: str) -> int:
        replicas = len(self.spec.group(group).replicas)
        if self._quorum_policy == "all":
            return replicas
        if self._quorum_policy == "majority":
            return replicas // 2 + 1
        return max(1, min(int(self._quorum_policy), replicas))

    def _group_names(self) -> List[str]:
        return sorted(self.clients)

    def _degrade(self, group: str, op: str, error: Exception) -> None:
        self.cluster_stats.group_degradations += 1
        target = "local" if self.local is not None else "cold"
        self._trace("cluster.degrade", group=group, op=op,
                    error=type(error).__name__, target=target)
        log.warning("shard group %s unavailable for %s (%s); "
                    "degrading to %s", group, op, error, target)

    # -- reads ---------------------------------------------------------------

    def _group_hedge_threshold(self, group: str) -> Optional[float]:
        """The group's primary-probe latency bound in seconds, or None
        while the histogram is still cold (un-hedged pulls).

        Deterministically derived: an explicit ``hedge_threshold``
        wins; otherwise ``max(hedge_floor, 2 x p99)`` of this client's
        own observed pull latencies for the group.
        """
        if self.hedge_threshold is not None:
            return self.hedge_threshold
        for series in self._latency:
            if series.name == "cluster_pull_ms" \
                    and series.labels.get("group") == group:
                if series.count >= HEDGE_MIN_SAMPLES:
                    return max(self.hedge_floor,
                               2.0 * series.percentile(99) / 1000.0)
                return None
        return None

    def _observe_pull(self, group: str, started: float) -> None:
        self._latency.histogram("cluster_pull_ms", group=group).observe(
            (self._clock() - started) * 1000.0)

    def _hedged_pull(self, group: str, payload: Dict,
                     deadline: Deadline) -> Dict:
        """One group fetch, hedged: the primary replica gets a single
        attempt bounded by the hedge threshold; past it (or on any
        primary failure, or under an injected ``overload.hedge``
        fault) the request is re-issued against the sibling replicas
        and the primary's in-flight answer is abandoned (its socket is
        already closed).  Everything spends the one ``deadline``.
        """
        client = self.clients[group]
        started = self._clock()
        siblings = client.endpoints[1:]
        if not siblings:
            # nobody to hedge to: the plain retry/failover engine
            response = client.request("pull", payload,
                                      deadline=deadline)
            self._observe_pull(group, started)
            return response
        threshold = self._group_hedge_threshold(group)
        forced = fault_point("overload.hedge", group=group, op="pull")
        if threshold is None and not forced:
            response = client.request("pull", payload,
                                      deadline=deadline)
            self._observe_pull(group, started)
            return response
        try:
            if forced:
                raise RemoteError("injected hedge trigger")
            response = client.request(
                "pull", payload, endpoints=[client.endpoints[0]],
                timeout_cap=threshold, deadline=deadline,
                max_attempts=1)
        except Exception as error:  # noqa: BLE001 - any primary-probe
            # failure (slow past the threshold included) hedges
            self.cluster_stats.hedges += 1
            self._trace("cluster.hedge", group=group,
                        threshold=threshold,
                        error=type(error).__name__)
            try:
                response = client.request("pull", payload,
                                          endpoints=siblings,
                                          deadline=deadline)
            except Exception as hedge_error:  # noqa: BLE001 - hedge
                # lost too; the full engine (primary included) is the
                # last resort
                log.debug("hedge to %s siblings lost: %s", group,
                          hedge_error)
                response = client.request("pull", payload,
                                          deadline=deadline)
            else:
                self.cluster_stats.hedge_wins += 1
                self._trace("cluster.hedge_win", group=group)
        self._observe_pull(group, started)
        return response

    def _pull_group(self, group: str, config_fp: str,
                    image_fp: str) -> List[Dict]:
        """One group's records, failing over past stale replies.

        The hedged first fetch and every stale-failover refetch spend
        one shared deadline budget (docs/overload.md) — a group that
        keeps answering stale cannot hold the boot past its deadline.
        """
        fault_point("cluster.route", group=group, op="pull")
        client = self.clients[group]
        payload = {"config_fp": config_fp, "image_fp": image_fp}
        deadline = Deadline.after(self.request_budget, self._clock)
        for fetch in range(len(client.endpoints)):
            if fetch == 0:
                response = self._hedged_pull(group, payload, deadline)
            else:
                response = client.request("pull", payload,
                                          deadline=deadline)
            if fault_point("cluster.pull", group=group, op="pull"):
                # a replica answered from a stale manifest: discard and
                # let the failover order try its siblings
                self.cluster_stats.stale_replicas += 1
                self._trace("cluster.failover", group=group,
                            reason="stale-replica")
                continue
            records = response.get("records")
            if not isinstance(records, list):
                raise RemoteError(
                    f"pull from {group} carried no record list")
            return records
        raise RemoteError(f"every replica of {group} answered stale")

    def load(self, config_fp: str, image_fp: str) -> List[Dict]:
        """Union of every reachable group's records; never raises.

        Records are deduplicated by content key and returned in sorted
        key order, so the warm-start set is deterministic regardless of
        which replica of each group answered — and any degraded group
        just shrinks the set (local fallback refills it when a local
        repository exists).
        """
        self.cluster_stats.pulls += 1
        merged: Dict[str, Dict] = {}
        degraded = False
        for group in self._group_names():
            try:
                records = self._pull_group(group, config_fp, image_fp)
            except Exception as error:  # noqa: BLE001 - degrade ladder,
                # never raise into the VM
                self._degrade(group, "pull", error)
                degraded = True
                continue
            for record in records:
                if isinstance(record, dict) and "key" in record:
                    merged.setdefault(record["key"], record)
        if degraded:
            if self.local is not None:
                self.cluster_stats.local_fallbacks += 1
                for record in self.local.load(config_fp, image_fp):
                    merged.setdefault(record["key"], record)
            else:
                self.cluster_stats.cold_degradations += 1
        return [merged[key] for key in sorted(merged)]

    def manifest_entry_count(self, config_fp: str,
                             image_fp: str) -> Optional[int]:
        """Sum of per-group manifest entries, or the local count, or
        None when nothing answers; never raises."""
        total = 0
        answered = False
        for group in self._group_names():
            try:
                fault_point("cluster.route", group=group, op="manifest")
                response = self.clients[group].request(
                    "manifest", {"config_fp": config_fp,
                                 "image_fp": image_fp})
            except Exception as error:  # noqa: BLE001 - degrade ladder,
                # never raise into the VM
                self._degrade(group, "manifest", error)
                continue
            entries = response.get("entries")
            if isinstance(entries, int):
                total += entries
                answered = True
        if answered:
            return total
        if self.local is not None:
            return self.local.manifest_entry_count(config_fp, image_fp)
        return None

    # -- writes --------------------------------------------------------------

    def save(self, records: List[Dict], config_fp: str, image_fp: str,
             config_name: str = "") -> int:
        """Replicated, sharded push with quorum accounting; never raises.

        Records partition by ring group; each group's share fans out to
        all of its replicas as a ``merge=true`` push.  Per group: zero
        acks degrades to the local repository (when present) and counts
        ``push_group_failures``; acks below the quorum count
        ``quorum_misses`` (anti-entropy heals the lag).  Returns the
        number of records newly written to the cluster (max across the
        acking replicas, summed over groups).
        """
        valid = [r for r in records if r is not None]
        self.cluster_stats.pushes += 1
        self.cluster_stats.records_routed += len(valid)
        by_group: Dict[str, List[Dict]] = {}
        for record in valid:
            by_group.setdefault(
                self.ring.group_for(record["key"]), []).append(record)
        total_written = 0
        push_summary = {"written": 0, "deduped": 0, "rejected": 0}
        any_ack = False
        for group in sorted(by_group):
            share = by_group[group]
            payload = {"records": share, "config_fp": config_fp,
                       "image_fp": image_fp,
                       "config_name": config_name, "merge": True}
            try:
                fault_point("cluster.route", group=group, op="push")
                responses = self.clients[group].fan_out("push", payload)
            except Exception as error:  # noqa: BLE001 - degrade ladder,
                # never raise into the VM
                self._degrade(group, "push", error)
                responses = []
            acks = [r for r in responses if isinstance(r, dict)]
            quorum = self.quorum_for(group)
            self._trace("cluster.quorum", group=group,
                        acks=len(acks), quorum=quorum,
                        replicas=len(self.clients[group].endpoints),
                        records=len(share))
            if not acks:
                self.cluster_stats.push_group_failures += 1
                if self.local is not None:
                    self.cluster_stats.local_fallbacks += 1
                    total_written += self.local.save(
                        share, config_fp, image_fp,
                        config_name=config_name, merge=True)
                else:
                    self.cluster_stats.cold_degradations += 1
                continue
            if len(acks) < quorum:
                self.cluster_stats.quorum_misses += 1
            any_ack = True
            # the freshest replica's answer describes what this push
            # added to the cluster; laggards re-writing old objects
            # would overstate it
            total_written += max(
                a.get("written", 0) if isinstance(a.get("written"), int)
                else 0 for a in acks)
            first = acks[0]
            for field in push_summary:
                value = first.get(field)
                if isinstance(value, int):
                    push_summary[field] += value
        self.last_push = push_summary if any_ack else None
        return total_written

    # -- observability -------------------------------------------------------

    @property
    def remote_stats(self) -> _StatsView:
        """Summed per-group client counters + the cluster-tier ladder
        counters, as one flat snapshot (``stats()['remote']``)."""
        merged = RemoteStats()
        for client in self.clients.values():
            for name, value in client.remote_stats.to_dict().items():
                setattr(merged, name, getattr(merged, name) + value)
        data = merged.to_dict()
        data.update(self.cluster_stats.to_dict())
        return _StatsView(data)

    def stats(self) -> _StatsView:
        return self.remote_stats

    def health_view(self) -> Dict[str, List[Dict]]:
        """Per-group, per-endpoint health (breakers + server answers)."""
        return {group: self.clients[group].endpoint_health()
                for group in self._group_names()}

    def ping(self) -> bool:
        """True when every shard group has at least one live replica."""
        return all(self.clients[group].ping()
                   for group in self._group_names())
