"""Superblock formation from runtime profiles.

Once a block entry crosses the hot threshold, the VMM organizes the hot
region into a *superblock* (Hwu et al.): a single-entry, multiple-exit
straight-line trace that follows the biased direction of each conditional
branch recorded by the edge profile.  Side exits cover the unlikely
directions; if the trace closes back on its own head, the superblock ends
in a native loop-back jump and the hot loop runs entirely inside the code
cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.x86lite.instruction import Instruction
from repro.isa.x86lite.opcodes import Op
from repro.translator.emit import scan_block

#: Default superblock size cap, in architected instructions.
MAX_SUPERBLOCK_INSTRS = 200

#: A conditional edge must carry at least this fraction of outgoing flow
#: for the trace to follow it.
DEFAULT_BIAS = 0.6


@dataclass
class SuperblockBlock:
    """One constituent basic block of a superblock trace."""

    entry: int
    instrs: List[Instruction]
    #: how the trace leaves this block: 'taken'/'fallthrough' (followed
    #: JCC), 'jump' (direct JMP straightened away), 'fallthrough-limit'
    #: (size-limited block), or None for the final block.
    followed: Optional[str] = None

    @property
    def last(self) -> Instruction:
        return self.instrs[-1]


@dataclass
class Superblock:
    """A formed superblock trace, ready for the SBT."""

    head: int
    blocks: List[SuperblockBlock] = field(default_factory=list)
    #: 'loop' when the trace closes on its head; otherwise the final
    #: block's own terminator decides the tail.
    loops_to_head: bool = False

    @property
    def entries(self) -> List[int]:
        return [block.entry for block in self.blocks]

    @property
    def instr_count(self) -> int:
        return sum(len(block.instrs) for block in self.blocks)

    @property
    def side_exit_count(self) -> int:
        return sum(1 for block in self.blocks
                   if block.followed in ("taken", "fallthrough"))


def form_superblock(memory, seed: int, edges,
                    max_instrs: int = MAX_SUPERBLOCK_INSTRS,
                    bias: float = DEFAULT_BIAS,
                    max_blocks: int = 32) -> Superblock:
    """Grow a superblock from ``seed`` along the profiled hot path.

    ``edges`` provides ``biased_successor(entry, bias)`` (an
    :class:`~repro.vmm.profiling.EdgeProfile`, or anything with that
    surface; the hardware-profiled VM.fe passes a static fallback that
    returns None, yielding single-block superblocks extended only through
    unconditional jumps).
    """
    superblock = Superblock(head=seed)
    visited = set()
    pc = seed

    while len(superblock.blocks) < max_blocks and \
            superblock.instr_count < max_instrs:
        instrs = scan_block(memory, pc)
        block = SuperblockBlock(entry=pc, instrs=instrs)
        superblock.blocks.append(block)
        visited.add(pc)

        last = block.last
        if last.is_complex or last.width == 16:
            break
        if last.op in (Op.RET, Op.CALL) or \
                (last.is_control_transfer and last.target is None):
            break  # calls/returns/indirects end the trace

        if last.op is Op.JMP:
            next_pc = last.target
            block.followed = "jump"
        elif last.op is Op.JCC:
            biased = edges.biased_successor(pc, bias)
            if biased == last.target:
                block.followed = "taken"
                next_pc = last.target
            elif biased == last.next_addr:
                block.followed = "fallthrough"
                next_pc = last.next_addr
            else:
                block.followed = None
                break
        elif not last.is_control_transfer:
            # block hit the scan size limit; continue straight through
            block.followed = "fallthrough-limit"
            next_pc = last.next_addr
        else:  # pragma: no cover - cases above are exhaustive
            break

        if next_pc == superblock.head:
            superblock.loops_to_head = True
            break
        if next_pc in visited:
            # Re-entering the middle of the trace (a non-head cycle):
            # stop here and let the block's own terminator produce a
            # normal exit stub toward the revisited address.
            block.followed = None
            break
        pc = next_pc

    return superblock
