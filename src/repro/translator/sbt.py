"""SBT — the optimizing hot superblock translator (stage 2 of Fig. 1b).

Translation of a formed superblock proceeds in four steps:

1. **Crack** every constituent instruction (shared cracker).
2. **Straighten** control flow: followed unconditional jumps vanish;
   followed conditional branches become a single BC to a side-exit stub
   (inverting the condition when the trace follows the taken direction).
3. **Optimize**: dead-flag elimination, redundant-load elimination with
   store-to-load forwarding (:mod:`repro.translator.redundancy`), then
   dependence-aware reordering with macro-op fusion
   (:mod:`repro.translator.fusion`).
4. **Emit**: body, tail (loop-back jump / exit stub / VMEXIT / VMCALL),
   and the side-exit stubs; fix up BC displacements; install in the SBT
   code cache with a side table for precise-state reconstruction.

Measured SBT costs from the paper (kept as configuration for the timing
layer): Δ_SBT = 1152 x86 instructions ≈ 1674 native instructions per hot
x86 instruction; optimized code runs p = 1.15–1.2x faster than BBT code.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Tuple

from repro.faults.plane import fault_point
from repro.isa.fusible.encoding import encode_stream, stream_length
from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import (
    FLAG_READING_UOPS,
    UOp,
)
from repro.memory.address_space import AddressSpace
from repro.obs.metrics import metric_field
from repro.translator.code_cache import (
    ExitStub,
    Translation,
    TranslationDirectory,
)
from repro.translator.cracker import crack
from repro.translator.emit import direct_exit_stub, indirect_exit, \
    vmcall_complex
from repro.translator.fusion import FusionStats, fuse_microops
from repro.translator.redundancy import eliminate_redundant_loads
from repro.translator.superblock import (
    DEFAULT_BIAS,
    MAX_SUPERBLOCK_INSTRS,
    Superblock,
    form_superblock,
)
from repro.isa.x86lite.opcodes import Op
from repro.isa.x86lite.registers import Cond
from repro.verify.sanitizer import check_stream

log = logging.getLogger("repro.translator")

#: Paper-measured SBT translation overheads (Section 3.2).
DELTA_SBT_X86_INSTRUCTIONS = 1152
DELTA_SBT_NATIVE_INSTRUCTIONS = 1674

#: Speedup of SBT-optimized code over BBT code (Section 3.2: 1.15-1.2).
SBT_OVER_BBT_SPEEDUP = 1.18


def invert_cond(cond: Cond) -> Cond:
    """The negated condition code (tttn LSB flips the sense)."""
    return Cond(int(cond) ^ 1)


class SuperblockTranslator:
    """Stage-2 translator: forms, optimizes and installs superblocks."""

    # registry-backed statistics (shared registry via the directory)
    superblocks_translated = metric_field()
    instrs_translated = metric_field(name="sbt_instrs_translated")
    uops_emitted = metric_field(name="sbt_uops_emitted")
    pairs_fused = metric_field()
    flags_eliminated = metric_field()
    loads_eliminated = metric_field()

    def __init__(self, directory: TranslationDirectory,
                 memory: AddressSpace,
                 max_instrs: int = MAX_SUPERBLOCK_INSTRS,
                 bias: float = DEFAULT_BIAS,
                 enable_fusion: bool = True,
                 enable_dead_flag_elim: bool = True,
                 enable_load_elim: bool = True,
                 verify: bool = False) -> None:
        self.directory = directory
        self.memory = memory
        self.max_instrs = max_instrs
        self.bias = bias
        self.enable_fusion = enable_fusion
        self.enable_dead_flag_elim = enable_dead_flag_elim
        self.enable_load_elim = enable_load_elim
        #: debug mode: statically verify each stream before install
        self.verify = verify
        # statistics (metric_field descriptors backed by this registry)
        self.metrics = directory.metrics
        self.superblocks_translated = 0
        self.instrs_translated = 0
        self.uops_emitted = 0
        self.pairs_fused = 0
        self.flags_eliminated = 0
        self.loads_eliminated = 0

    # -- public API ------------------------------------------------------------

    def translate(self, seed: int, edges) -> Translation:
        """Form a superblock at ``seed`` and install its translation."""
        fault_point("translate.sbt", entry=seed)
        superblock = form_superblock(self.memory, seed, edges,
                                     max_instrs=self.max_instrs,
                                     bias=self.bias)
        return self.translate_superblock(superblock)

    def translate_superblock(self, superblock: Superblock) -> Translation:
        body, bc_stub_indices, stub_plans, side_x86 = \
            self._build_body(superblock)

        if self.enable_dead_flag_elim:
            body, eliminated = eliminate_dead_flags(body)
            self.flags_eliminated += eliminated
        if self.enable_load_elim:
            body, load_stats = eliminate_redundant_loads(body)
            self.loads_eliminated += load_stats.loads_eliminated
        stats = FusionStats(uops_total=len(body))
        if self.enable_fusion:
            body, stats = fuse_microops(body)

        uops, exits = self._layout(body, bc_stub_indices, stub_plans,
                                   superblock)

        translation = Translation(
            entry=superblock.head, kind="sbt",
            native_addr=self.directory.sbt_cache.reserve(),
            x86_addrs=superblock.entries,
            instr_count=superblock.instr_count,
            uop_count=len(uops),
            fused_pairs=stats.pairs,
            uops=uops)
        for offset, kind, target in exits:
            translation.exits.append(ExitStub(
                stub_addr=translation.native_addr + offset, kind=kind,
                x86_target=target))
        offset = 0
        for uop in uops:
            if uop.op is UOp.VMCALL:
                translation.side_table[translation.native_addr + offset] = \
                    uop.x86_addr if uop.x86_addr is not None \
                    else superblock.head
            offset += uop.length

        if self.verify:
            check_stream(uops, force=True)
        self.directory.install(encode_stream(uops), translation)
        self.superblocks_translated += 1
        self.instrs_translated += superblock.instr_count
        self.uops_emitted += len(uops)
        self.pairs_fused += stats.pairs
        self.metrics.histogram("sbt_superblock_instrs").observe(
            superblock.instr_count)
        log.debug("sbt: %#x -> %#x (%d instr(s), %d uop(s), "
                  "%d fused pair(s))", superblock.head,
                  translation.native_addr, superblock.instr_count,
                  len(uops), stats.pairs)
        return translation

    # -- body construction ------------------------------------------------------

    def _build_body(self, superblock: Superblock):
        """Crack and straighten the trace.

        Returns ``(body, bc_stub_indices, stub_plans, side_x86)`` where
        ``stub_plans`` is an ordered list of ``(kind, x86_target)`` and
        ``bc_stub_indices`` maps each BC occurrence (in order) to the stub
        it must branch to.  Stub plan index 0 is reserved for a
        fall-through tail when the body runs off its end.
        """
        body: List[MicroOp] = []
        bc_stub_indices: List[int] = []
        stub_plans: List[Tuple[str, Optional[int]]] = []
        side_x86: List[int] = []

        final_block = superblock.blocks[-1]
        needs_leading_stub: Optional[Tuple[str, Optional[int]]] = None

        for block in superblock.blocks:
            is_final = block is final_block
            for instr in block.instrs[:-1]:
                body.extend(crack(instr).uops)
            last = block.last
            cracked = crack(last)

            if block.followed is not None:
                # the trace continues through this block's terminator
                body.extend(cracked.uops)
                if block.followed in ("taken", "fallthrough"):
                    if block.followed == "taken":
                        cond = invert_cond(last.cond)
                        side_target = last.next_addr
                    else:
                        cond = Cond(last.cond)
                        side_target = last.target
                    stub_plans.append(("side", side_target))
                    bc_stub_indices.append(len(stub_plans) - 1)
                    body.append(MicroOp(UOp.BC, cond=cond, imm=0,
                                        x86_addr=last.addr))
                # 'jump' and 'fallthrough-limit': straightened away
                if is_final:
                    if superblock.loops_to_head:
                        bc_stub_indices.append(-1)  # loop-back marker
                        body.append(MicroOp(UOp.JMP, imm=0,
                                            x86_addr=last.addr))
                    else:
                        # trace hit its size cap mid-flight: exit to the
                        # followed direction's continuation
                        if block.followed in ("taken", "jump"):
                            continuation = last.target
                        else:
                            continuation = last.next_addr
                        needs_leading_stub = ("fallthrough", continuation)
                continue

            # final block with an unfollowed terminator
            if cracked.cmplx:
                body.extend(vmcall_complex(last.addr))
            elif last.op is Op.JCC:
                stub_plans.append(("taken", last.target))
                bc_stub_indices.append(len(stub_plans) - 1)
                body.append(MicroOp(UOp.BC, cond=Cond(last.cond), imm=0,
                                    x86_addr=last.addr))
                body.extend(cracked.uops)
                needs_leading_stub = ("fallthrough", last.next_addr)
            elif last.is_control_transfer and last.target is not None:
                body.extend(cracked.uops)
                needs_leading_stub = ("jump", last.target)
            elif last.is_control_transfer:
                body.extend(cracked.uops)
                body.extend(indirect_exit(last.addr))
            else:
                body.extend(cracked.uops)
                needs_leading_stub = ("fallthrough", last.next_addr)

        if needs_leading_stub is not None:
            # the body runs off its end: its continuation stub must be
            # the first thing after the body
            stub_plans.insert(0, needs_leading_stub)
            bc_stub_indices = [index + 1 if index >= 0 else index
                               for index in bc_stub_indices]

        return body, bc_stub_indices, stub_plans, side_x86

    def _layout(self, body: List[MicroOp], bc_stub_indices: List[int],
                stub_plans: List[Tuple[str, Optional[int]]],
                superblock: Superblock):
        """Concatenate body + stubs; resolve BC/JMP displacements."""
        body_len = stream_length(body)
        stub_offsets: List[int] = []
        offset = body_len
        stub_uops: List[MicroOp] = []
        exits: List[Tuple[int, str, Optional[int]]] = []
        for kind, target in stub_plans:
            stub_offsets.append(offset)
            stub = direct_exit_stub(target, superblock.head)
            stub_uops.extend(stub)
            exit_kind = "taken" if kind == "side" else kind
            exits.append((offset, exit_kind, target))
            offset += stream_length(stub)

        # fix up control displacements by occurrence order
        fixups = list(bc_stub_indices)
        out: List[MicroOp] = []
        position = 0
        for uop in body:
            if uop.op in (UOp.BC, UOp.JMP) and fixups:
                stub_index = fixups.pop(0)
                target_offset = 0 if stub_index == -1 \
                    else stub_offsets[stub_index]
                displacement = target_offset - (position + uop.length)
                uop = MicroOp(uop.op, rd=uop.rd, rs1=uop.rs1, rs2=uop.rs2,
                              imm=displacement, cond=uop.cond,
                              fused=uop.fused, setflags=uop.setflags,
                              x86_addr=uop.x86_addr)
            out.append(uop)
            position += uop.length
        return out + stub_uops, exits


# -- dead flag elimination --------------------------------------------------------

def eliminate_dead_flags(uops: List[MicroOp]) -> Tuple[List[MicroOp], int]:
    """Clear ``.f`` bits (and drop pure compares) whose flags are dead.

    A flag write is live if some later micro-op reads flags, or an exit
    (branch, VMEXIT, VMCALL) is reached before the next flag write —
    architected flags must be precise at every exit.

    CF is tracked separately from ZF/SF/OF because INCF/DECF (the x86
    INC/DEC semantics) write the latter but pass CF through: an earlier
    full writer may still be live *for CF only* across them.
    """
    eliminated = 0
    out: List[MicroOp] = []
    cf_live = True    # flags are live-out at the end of the stream
    rest_live = True  # ZF/SF/OF
    for uop in reversed(uops):
        if uop.is_branch and uop.op is not UOp.BC:
            cf_live = rest_live = True  # exits need precise flags
        if uop.writes_flags:
            partial = uop.op in (UOp.INCF, UOp.DECF)
            if partial:
                if rest_live:
                    rest_live = False  # provides ZF/SF/OF; CF untouched
                else:
                    eliminated += 1
                    uop = _without_flags(uop)
            elif cf_live or rest_live:
                cf_live = rest_live = False
            else:
                eliminated += 1
                if uop.op in (UOp.CMP2, UOp.TEST2) or \
                        (uop.dest() is None and not uop.is_store):
                    continue  # pure compare: drop entirely
                uop = _without_flags(uop)
        if uop.op in FLAG_READING_UOPS or uop.op is UOp.BC:
            cf_live = rest_live = True  # conservative: reads any flag
        out.append(uop)
    out.reverse()
    return out, eliminated


def _without_flags(uop: MicroOp) -> MicroOp:
    return MicroOp(uop.op, rd=uop.rd, rs1=uop.rs1, rs2=uop.rs2,
                   imm=uop.imm, cond=uop.cond, fused=uop.fused,
                   setflags=False, x86_addr=uop.x86_addr)
