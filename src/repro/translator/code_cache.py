"""Code caches, the translation lookup table, and chaining.

Translations live in concealed main-memory regions (Fig. 1a's "Basic Block
Code Cache" and "SuperBlock Code Cache").  Block exits initially leave the
native machine through ``VMEXIT`` stubs that route through the VMM's
translation lookup table; once the target translation exists, the stub's
first micro-op is patched into a direct ``JMP`` — *chaining* — so steady-
state execution never re-enters the VMM.

Capacity is finite.  When an allocation does not fit, the owning cache is
flushed wholesale (the management policy of that era's production systems,
and the mechanism behind the paper's "limited code cache size can cause
hotspot re-translations" observation); the VMM is notified so it can drop
lookup entries and profiling state.
"""

from __future__ import annotations

import hashlib
import logging
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.isa.fusible.encoding import encode_uop
from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import UOp
from repro.isa.fusible.registers import R_EXIT_TARGET
from repro.memory.address_space import AddressSpace
from repro.obs.metrics import MetricsRegistry, metric_field
from repro.verify.sanitizer import check_install

log = logging.getLogger("repro.translator")

#: Default placement of the two code caches.  They are adjacent so that a
#: chained JMP (signed 24-bit byte offset, +/-8 MiB) can always reach
#: across them.
BBT_CACHE_BASE = 0x2000_0000
BBT_CACHE_CAPACITY = 4 * 1024 * 1024
SBT_CACHE_BASE = 0x2040_0000
SBT_CACHE_CAPACITY = 4 * 1024 * 1024


class CodeCacheFull(Exception):
    """Internal signal: an allocation did not fit (triggers a flush)."""


@dataclass
class ExitStub:
    """One exit point of a translation."""

    stub_addr: int                   # native address of the stub
    kind: str                        # 'jump'|'fallthrough'|'taken'|
    #                                  'indirect'|'vmcall'|'loop'
    x86_target: Optional[int] = None  # None for indirect/vmcall exits
    chained_to: Optional[int] = None  # native target once patched


@dataclass
class Translation:
    """One installed translation (basic block or superblock)."""

    entry: int                       # architected entry address
    kind: str                        # 'bbt' | 'sbt'
    native_addr: int = 0
    native_len: int = 0
    x86_addrs: List[int] = field(default_factory=list)
    instr_count: int = 0
    uop_count: int = 0
    fused_pairs: int = 0
    exits: List[ExitStub] = field(default_factory=list)
    #: native VMCALL address -> architected address (precise-state map)
    side_table: Dict[int, int] = field(default_factory=dict)
    counter_addr: Optional[int] = None
    uops: List[MicroOp] = field(default_factory=list)   # for introspection
    #: masked digest of the installed bytes (integrity checking)
    install_checksum: Optional[str] = None

    @property
    def fused_fraction(self) -> float:
        """Fraction of micro-ops that are part of a fused macro-op pair."""
        if not self.uop_count:
            return 0.0
        return 2.0 * self.fused_pairs / self.uop_count

    def integrity_mask(self) -> List[int]:
        """Byte offsets of the runtime-patchable linkage words.

        Chaining overwrites the first micro-op of each exit stub, and a
        superseding SBT copy overwrites the first word at the entry
        (the BBT->SBT redirect).  Those words are VMM-owned and legally
        mutate after install, so the integrity checksum masks them; the
        rest of the translation is immutable and fully covered.
        """
        offsets = [0]
        offsets.extend(stub.stub_addr - self.native_addr
                       for stub in self.exits)
        return offsets


def masked_digest(data: bytes, mask_offsets: Iterable[int]) -> str:
    """Digest of ``data`` with each masked word (4 bytes) zeroed."""
    buf = bytearray(data)
    for offset in mask_offsets:
        for index in range(max(offset, 0), min(offset + 4, len(buf))):
            buf[index] = 0
    return hashlib.sha256(bytes(buf)).hexdigest()


class CodeCache:
    """A bump-allocated native-code region with wholesale flush."""

    # registry-backed statistics; both caches share the series names,
    # distinguished by the ``cache=bbt`` / ``cache=sbt`` label
    flushes = metric_field(name="code_cache_flushes")
    bytes_installed_total = metric_field(name="code_cache_bytes_installed")

    def __init__(self, memory: AddressSpace, base: int, capacity: int,
                 name: str,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.memory = memory
        self.base = base
        self.capacity = capacity
        self.name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._metric_labels = {"cache": name}
        self._next = base
        self.translations: List[Translation] = []
        self.flushes = 0
        self.bytes_installed_total = 0

    @property
    def used_bytes(self) -> int:
        return self._next - self.base

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def would_fit(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def install(self, data: bytes, translation: Translation) -> int:
        """Write translation bytes into the cache; returns the address.

        The caller must have relocated the translation to
        ``self.reserve(len(data))`` beforehand (stub offsets are absolute).
        """
        if not self.would_fit(len(data)):
            raise CodeCacheFull(
                f"{self.name}: {len(data)} bytes do not fit "
                f"({self.free_bytes} free)")
        addr = self._next
        if translation.native_addr != addr:
            raise ValueError("translation not relocated to reserve() addr")
        self.memory.write(addr, data)
        self._next += len(data)
        translation.native_len = len(data)
        translation.install_checksum = masked_digest(
            data, translation.integrity_mask())
        self.translations.append(translation)
        self.bytes_installed_total += len(data)
        self.metrics.histogram("translation_bytes",
                               cache=self.name).observe(len(data))
        return addr

    def reserve(self) -> int:
        """The address the next install() will use."""
        return self._next

    def flush(self) -> List[Translation]:
        """Drop everything; returns the translations that were evicted."""
        evicted = self.translations
        log.info("%s cache flush: %d translation(s), %d byte(s) evicted",
                 self.name, len(evicted), self.used_bytes)
        self.memory.fill(self.base, self.used_bytes, 0)
        self._next = self.base
        self.translations = []
        self.flushes += 1
        return evicted


class TranslationDirectory:
    """The VMM's translation lookup table plus the chaining registry.

    Unifies the BBT and SBT caches: lookups prefer SBT translations (the
    optimized copy supersedes the simple one), chaining requests are
    resolved against whichever cache a target lands in, and flushes
    invalidate the affected entries and any chains into the flushed region.
    """

    # registry-backed statistics (see repro.obs.metrics)
    chains_made = metric_field()
    chains_broken = metric_field()
    lookups = metric_field()
    lookup_misses = metric_field()
    redirects_made = metric_field()

    def __init__(self, memory: AddressSpace,
                 bbt_base: int = BBT_CACHE_BASE,
                 bbt_capacity: int = BBT_CACHE_CAPACITY,
                 sbt_base: int = SBT_CACHE_BASE,
                 sbt_capacity: int = SBT_CACHE_CAPACITY,
                 verify_on_install: bool = False,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.memory = memory
        #: debug hook: verify every translation as it is installed
        self.verify_on_install = verify_on_install
        #: the machine's metrics plane; shared with both caches, the
        #: translators and the owning runtime
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: lifecycle event tracer; None (the default) costs one pointer
        #: test per chain/flush/evict site
        self.tracer = None
        self.bbt_cache = CodeCache(memory, bbt_base, bbt_capacity, "bbt",
                                   metrics=self.metrics)
        self.sbt_cache = CodeCache(memory, sbt_base, sbt_capacity, "sbt",
                                   metrics=self.metrics)
        self._bbt_lookup: Dict[int, Translation] = {}
        self._sbt_lookup: Dict[int, Translation] = {}
        #: x86 target -> stubs waiting to be chained to it
        self._pending_chains: Dict[int, List[ExitStub]] = {}
        #: native stub address -> (stub, owning translation)
        self._stub_by_addr: Dict[int, Tuple[ExitStub, Translation]] = {}
        #: native VMCALL address -> (x86 addr, owning translation)
        self._side_by_addr: Dict[int, Tuple[int, Translation]] = {}
        #: BBT entry redirections to superseding SBT copies:
        #: bbt native_addr -> (bbt translation, original first 4 bytes)
        self._redirects: Dict[int, Tuple[Translation, bytes]] = {}
        self.chains_made = 0
        self.chains_broken = 0
        self.lookups = 0
        self.lookup_misses = 0
        self.redirects_made = 0

    # -- lookup -----------------------------------------------------------

    def lookup(self, x86_addr: int) -> Optional[Translation]:
        """Translation lookup table: SBT first, then BBT."""
        self.lookups += 1
        translation = self._sbt_lookup.get(x86_addr)
        if translation is None:
            translation = self._bbt_lookup.get(x86_addr)
        if translation is None:
            self.lookup_misses += 1
        return translation

    def has_translation(self, x86_addr: int) -> bool:
        return x86_addr in self._sbt_lookup or x86_addr in self._bbt_lookup

    def has_sbt(self, x86_addr: int) -> bool:
        return x86_addr in self._sbt_lookup

    def find_stub(self, native_addr: int
                  ) -> Optional[Tuple[ExitStub, Translation]]:
        return self._stub_by_addr.get(native_addr)

    def resolve_side_table(self, native_addr: int
                           ) -> Optional[Tuple[int, Translation]]:
        """Map a VMCALL's native address to its architected address."""
        return self._side_by_addr.get(native_addr)

    def is_redirected(self, native_addr: int) -> bool:
        """Whether a BBT entry was patched to jump to its SBT copy."""
        return native_addr in self._redirects

    # -- installation -------------------------------------------------------

    def cache_for(self, kind: str) -> CodeCache:
        return self.bbt_cache if kind == "bbt" else self.sbt_cache

    def install(self, data: bytes, translation: Translation) -> None:
        """Install a finished translation and wire up all linkage."""
        cache = self.cache_for(translation.kind)
        cache.install(data, translation)
        lookup = (self._bbt_lookup if translation.kind == "bbt"
                  else self._sbt_lookup)
        lookup[translation.entry] = translation
        for stub in translation.exits:
            self._stub_by_addr[stub.stub_addr] = (stub, translation)
        for native_addr, x86_addr in translation.side_table.items():
            self._side_by_addr[native_addr] = (x86_addr, translation)
        # resolve chains waiting for this entry
        self._resolve_pending(translation.entry, translation.native_addr)
        # an SBT copy supersedes the BBT copy: patch the BBT entry with a
        # direct JMP so already-chained paths transition to hotspot code
        if translation.kind == "sbt":
            bbt_copy = self._bbt_lookup.get(translation.entry)
            if bbt_copy is not None and \
                    bbt_copy.native_addr not in self._redirects:
                saved = self.memory.read(bbt_copy.native_addr, 4)
                offset = translation.native_addr - \
                    (bbt_copy.native_addr + 4)
                self.memory.write(bbt_copy.native_addr,
                                  encode_uop(MicroOp(UOp.JMP, imm=offset)))
                self._redirects[bbt_copy.native_addr] = (bbt_copy, saved)
                self.redirects_made += 1
        check_install(self, translation)

    # -- chaining ---------------------------------------------------------------

    def request_chain(self, stub: ExitStub) -> bool:
        """Chain a stub to its target now, or queue it for later.

        Returns True if the stub was patched immediately.
        """
        if stub.x86_target is None or stub.chained_to is not None:
            return False
        target = self.lookup(stub.x86_target)
        if target is not None:
            self._patch(stub, target.native_addr)
            return True
        self._pending_chains.setdefault(stub.x86_target, []).append(stub)
        return False

    def _resolve_pending(self, x86_target: int, native_addr: int) -> None:
        for stub in self._pending_chains.pop(x86_target, []):
            if stub.chained_to is None:
                self._patch(stub, native_addr)

    def _patch(self, stub: ExitStub, native_target: int) -> None:
        """Overwrite the stub head with a direct JMP (the chain)."""
        offset = native_target - (stub.stub_addr + 4)
        jmp = encode_uop(MicroOp(UOp.JMP, imm=offset))
        self.memory.write(stub.stub_addr, jmp)
        stub.chained_to = native_target
        self.chains_made += 1
        if self.tracer is not None:
            self.tracer.instant("chain.made",
                                stub=f"{stub.stub_addr:#x}",
                                target=f"{native_target:#x}")

    # -- flushing --------------------------------------------------------------

    def flush(self, kind: str) -> List[Translation]:
        """Flush one cache; unlink every affected structure.

        Stubs elsewhere that were chained *into* the flushed region are
        un-chained (their VMEXIT path is restored) so execution safely
        falls back to the lookup table.
        """
        cache = self.cache_for(kind)
        low, high = cache.base, cache.base + cache.capacity
        evicted = cache.flush()
        if self.tracer is not None:
            self.tracer.instant("cache.flush", cache=kind,
                                evicted=len(evicted))
        lookup = self._bbt_lookup if kind == "bbt" else self._sbt_lookup
        lookup.clear()
        for translation in evicted:
            for stub in translation.exits:
                self._stub_by_addr.pop(stub.stub_addr, None)
            for native_addr in translation.side_table:
                self._side_by_addr.pop(native_addr, None)
        # drop pending chain requests originating in the flushed region
        for target in list(self._pending_chains):
            remaining = [stub for stub in self._pending_chains[target]
                         if not low <= stub.stub_addr < high]
            if remaining:
                self._pending_chains[target] = remaining
            else:
                del self._pending_chains[target]
        # un-chain surviving stubs that pointed into the flushed region
        for stub, _owner in self._stub_by_addr.values():
            if stub.chained_to is not None and \
                    low <= stub.chained_to < high:
                self._unpatch(stub)
        # undo / drop entry redirections touching the flushed region
        for native_addr in list(self._redirects):
            bbt_copy, saved = self._redirects[native_addr]
            if kind == "bbt" and low <= native_addr < high:
                del self._redirects[native_addr]       # redirect source gone
            elif kind == "sbt":
                self.memory.write(native_addr, saved)  # restore BBT entry
                del self._redirects[native_addr]
        return evicted

    def flush_all(self) -> None:
        self.flush("bbt")
        self.flush("sbt")

    # -- integrity ---------------------------------------------------------

    def verify_integrity(self, translation: Translation) -> bool:
        """Whether the installed bytes still match the install checksum.

        The runtime-patchable linkage words (chain/redirect sites) are
        masked out, so legal chaining and redirection never trip this;
        any other byte differing from what :meth:`install` wrote means
        the cache copy is corrupt and must not be executed.
        """
        if translation.install_checksum is None or \
                translation.native_len == 0:
            return True
        data = self.memory.read(translation.native_addr,
                                translation.native_len)
        return masked_digest(data, translation.integrity_mask()) == \
            translation.install_checksum

    def evict(self, translation: Translation) -> None:
        """Unlink one translation (detected corruption) without a flush.

        The lookup entry, stubs, side-table entries, pending chains and
        redirects involving the translation are all removed, and stubs
        elsewhere that were chained into its body are un-chained so
        execution falls back to the lookup table — exactly the flush
        recovery, scoped to one victim.  Its cache bytes are abandoned
        (bump allocation cannot reclaim holes); a later wholesale flush
        reclaims them.
        """
        cache = self.cache_for(translation.kind)
        if translation in cache.translations:
            cache.translations.remove(translation)
        if self.tracer is not None:
            self.tracer.instant("cache.evict", cache=translation.kind,
                                entry=f"{translation.entry:#x}")
        low = translation.native_addr
        high = translation.native_addr + translation.native_len
        lookup = (self._bbt_lookup if translation.kind == "bbt"
                  else self._sbt_lookup)
        if lookup.get(translation.entry) is translation:
            del lookup[translation.entry]
        for stub in translation.exits:
            self._stub_by_addr.pop(stub.stub_addr, None)
        for native_addr in translation.side_table:
            self._side_by_addr.pop(native_addr, None)
        # drop this translation's own pending chain requests
        for target in list(self._pending_chains):
            remaining = [stub for stub in self._pending_chains[target]
                         if not low <= stub.stub_addr < high]
            if remaining:
                self._pending_chains[target] = remaining
            else:
                del self._pending_chains[target]
        # un-chain surviving stubs that jump into the evicted body
        for stub, _owner in self._stub_by_addr.values():
            if stub.chained_to is not None and \
                    low <= stub.chained_to < high:
                self._unpatch(stub)
        # redirects: an evicted BBT copy takes its redirect record with
        # it; an evicted SBT copy must restore the BBT entry it patched
        for native_addr in list(self._redirects):
            bbt_copy, saved = self._redirects[native_addr]
            if translation.kind == "bbt" and bbt_copy is translation:
                del self._redirects[native_addr]
            elif translation.kind == "sbt" and \
                    bbt_copy.entry == translation.entry:
                self.memory.write(native_addr, saved)
                del self._redirects[native_addr]

    def _unpatch(self, stub: ExitStub) -> None:
        """Restore a stub head to its original LUI (undo chaining)."""
        target = stub.x86_target if stub.x86_target is not None else 0
        lui = encode_uop(MicroOp(UOp.LUI, rd=R_EXIT_TARGET,
                                 imm=(target >> 13)))
        self.memory.write(stub.stub_addr, lui)
        stub.chained_to = None
        self.chains_broken += 1
        if self.tracer is not None:
            self.tracer.instant("chain.broken",
                                stub=f"{stub.stub_addr:#x}")
