"""Shared emission helpers for the BBT and SBT translators.

Exit stubs have a fixed 12-byte shape so that chaining can patch them in
place::

    LUI   R29, hi19(x86_target)     ; 4 bytes  <- overwritten by JMP when
    ORI   R29, R29, lo13(target)    ; 4 bytes     the stub is chained
    VMEXIT R29                      ; 4 bytes

The VMM dispatcher receives the architected continuation address in R29
whether the exit was direct (built by the stub) or indirect (materialized
by the cracked body).
"""

from __future__ import annotations

from typing import List

from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import UOp, VMService
from repro.isa.fusible.registers import (
    R_EXIT_TARGET,
    R_SCRATCH0,
    R_SCRATCH1,
    R_SCRATCH2,
)
from repro.isa.x86lite.decoder import decode_at
from repro.isa.x86lite.instruction import Instruction
from repro.isa.x86lite.registers import Cond

#: Encoded size of a direct exit stub (LUI + ORI + VMEXIT).
EXIT_STUB_BYTES = 12

#: Encoded size of the software-profiling prologue.
PROFILE_PROLOGUE_BYTES = 36


def direct_exit_stub(x86_target: int, x86_addr: int) -> List[MicroOp]:
    """The three-micro-op patchable exit stub."""
    return [
        MicroOp(UOp.LUI, rd=R_EXIT_TARGET, imm=(x86_target >> 13) & 0x7FFFF,
                x86_addr=x86_addr),
        MicroOp(UOp.ORI, rd=R_EXIT_TARGET, rs1=R_EXIT_TARGET,
                imm=x86_target & 0x1FFF, x86_addr=x86_addr),
        MicroOp(UOp.VMEXIT, rs1=R_EXIT_TARGET, x86_addr=x86_addr),
    ]


def indirect_exit(x86_addr: int) -> List[MicroOp]:
    """Exit through R29, which the cracked body already loaded."""
    return [MicroOp(UOp.VMEXIT, rs1=R_EXIT_TARGET, x86_addr=x86_addr)]


def profile_prologue(counter_addr: int, block_entry: int) -> List[MicroOp]:
    """Software profiling embedded in BBT code (VM.soft / VM.be).

    Decrements the block's countdown counter; on reaching zero, calls into
    the VMM (``VMCALL PROFILE``) which applies the hot-threshold policy.
    Architected flags are preserved around the countdown arithmetic.
    """
    high = (counter_addr >> 13) & 0x7FFFF
    low = counter_addr & 0x1FFF
    return [
        MicroOp(UOp.RDFLG, rd=R_SCRATCH2, x86_addr=block_entry),
        MicroOp(UOp.LUI, rd=R_SCRATCH0, imm=high, x86_addr=block_entry),
        MicroOp(UOp.ORI, rd=R_SCRATCH0, rs1=R_SCRATCH0, imm=low,
                x86_addr=block_entry),
        MicroOp(UOp.LDW, rd=R_SCRATCH1, rs1=R_SCRATCH0, imm=0,
                x86_addr=block_entry),
        MicroOp(UOp.SUBI, rd=R_SCRATCH1, rs1=R_SCRATCH1, imm=1,
                setflags=True, x86_addr=block_entry),
        MicroOp(UOp.STW, rd=R_SCRATCH1, rs1=R_SCRATCH0, imm=0,
                x86_addr=block_entry),
        MicroOp(UOp.BC, cond=Cond.NE, imm=4, x86_addr=block_entry),
        MicroOp(UOp.VMCALL, imm=int(VMService.PROFILE),
                x86_addr=block_entry),
        MicroOp(UOp.WRFLG, rs1=R_SCRATCH2, x86_addr=block_entry),
    ]


def vmcall_complex(x86_addr: int) -> List[MicroOp]:
    """Punt a complex architected instruction to VMM software."""
    return [MicroOp(UOp.VMCALL, imm=int(VMService.INTERP_ONE),
                    x86_addr=x86_addr)]


def scan_block(memory, entry: int, max_instrs: int = 64
               ) -> List[Instruction]:
    """Scan one dynamic basic block starting at ``entry``.

    The block ends at (and includes) the first control transfer or complex
    instruction, or after ``max_instrs`` instructions.
    """
    instrs: List[Instruction] = []
    pc = entry
    while len(instrs) < max_instrs:
        instr = decode_at(memory, pc)
        instrs.append(instr)
        if instr.is_control_transfer or instr.is_complex \
                or instr.width == 16:
            break
        pc = instr.next_addr
    return instrs
