"""Macro-op fusion — the SBT's signature optimization (Hu & Smith).

Dependent pairs of single-cycle micro-ops are reordered to be adjacent and
marked with the fusible head bit; the macro-op pipeline then processes each
pair as a single entity through issue, execution (collapsed 3-input ALU)
and retirement.  Pairs may span original x86 instruction boundaries — the
property that distinguishes the co-designed fusing from conventional x86
micro-op fusion, and the source of its IPC advantage.

Legality model:

* The *head* must be a single-cycle ALU op producing a register; the
  *tail* must consume that register.
* A pair carries at most three distinct source registers (the collapsed
  ALU has three read ports).
* The tail is hoisted up to sit behind its head; hoisting must not cross
  a micro-op it conflicts with (register, flag, or memory dependences).
* Control transfers and VMM barriers delimit *regions*; nothing moves
  across them, which also preserves precise architected state at every
  side exit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import (
    BARRIER_OPS,
    FLAG_READING_UOPS,
    FUSIBLE_HEAD_OPS,
    FUSIBLE_TAIL_OPS,
    UOp,
)

#: How far ahead (in micro-ops) the pairing pass searches for a tail.
DEFAULT_WINDOW = 8

#: Read-port budget of the collapsed macro-op ALU.
MAX_PAIR_SOURCES = 3


@dataclass
class FusionStats:
    """Outcome accounting for one fusion pass."""

    regions: int = 0
    pairs: int = 0
    uops_total: int = 0
    tails_hoisted: int = 0

    @property
    def fused_fraction(self) -> float:
        """Fraction of micro-ops covered by fused pairs."""
        if not self.uops_total:
            return 0.0
        return 2.0 * self.pairs / self.uops_total


def _is_boundary(uop: MicroOp) -> bool:
    return uop.is_branch or uop.op in BARRIER_OPS


def _reads_flags(uop: MicroOp) -> bool:
    return uop.op in FLAG_READING_UOPS


def _conflict(first: MicroOp, second: MicroOp) -> bool:
    """True if ``second`` cannot move above ``first``."""
    first_dest = first.dest()
    second_dest = second.dest()
    if first_dest is not None and first_dest in second.sources():
        return True  # RAW
    if second_dest is not None and second_dest in first.sources():
        return True  # WAR
    if first_dest is not None and first_dest == second_dest:
        return True  # WAW
    # flags as a single resource
    if first.writes_flags and (second.writes_flags or _reads_flags(second)):
        return True
    if _reads_flags(first) and second.writes_flags:
        return True
    # memory ordering: stores are fences against any memory op
    if first.is_store and (second.is_store or second.is_load):
        return True
    if second.is_store and first.is_load:
        return True
    return False


def _pair_sources(head: MicroOp, tail: MicroOp) -> int:
    head_dest = head.dest()
    sources = set(head.sources())
    sources.update(reg for reg in tail.sources() if reg != head_dest)
    return len(sources)


def _can_pair(head: MicroOp, tail: MicroOp) -> bool:
    if head.op not in FUSIBLE_HEAD_OPS:
        return False
    if tail.op is UOp.BC:
        # compare-branch fusion: the dependence is through the flags
        return head.writes_flags and \
            _pair_sources(head, tail) <= MAX_PAIR_SOURCES
    if head.dest() is None:
        return False
    if tail.op not in FUSIBLE_TAIL_OPS:
        return False
    if head.dest() not in tail.sources():
        return False
    return _pair_sources(head, tail) <= MAX_PAIR_SOURCES


def _fuse_region(region: List[MicroOp], window: int,
                 stats: FusionStats) -> List[MicroOp]:
    """Greedy in-order pairing with bounded tail hoisting."""
    uops = list(region)
    index = 0
    while index < len(uops) - 1:
        head = uops[index]
        if head.fused or head.op not in FUSIBLE_HEAD_OPS \
                or head.dest() is None:
            index += 1
            continue
        paired = False
        limit = min(len(uops), index + 1 + window)
        for scan in range(index + 1, limit):
            tail = uops[scan]
            if tail.fused:
                break  # never split an existing pair
            if not _can_pair(head, tail):
                if _conflict(head, tail) and head.dest() in tail.sources():
                    break  # the consumer exists but cannot pair; stop
                continue
            # legality of hoisting the tail up behind the head
            blocked = any(_conflict(uops[between], tail)
                          for between in range(index + 1, scan))
            if blocked:
                continue
            del uops[scan]
            uops.insert(index + 1, tail)
            uops[index] = head.with_fused(True)
            stats.pairs += 1
            if scan != index + 1:
                stats.tails_hoisted += 1
            index += 2
            paired = True
            break
        if not paired:
            index += 1
    return uops


def fuse_microops(uops: List[MicroOp], window: int = DEFAULT_WINDOW
                  ) -> Tuple[List[MicroOp], FusionStats]:
    """Fuse dependent pairs across an entire micro-op body.

    Control transfers and VMM barriers split the body into regions; pairs
    never span regions, but the flag producer feeding a region-ending BC
    may fuse with it (compare-branch fusion).
    """
    stats = FusionStats(uops_total=len(uops))
    out: List[MicroOp] = []
    region: List[MicroOp] = []

    def close_region(boundary: Optional[MicroOp]) -> None:
        if region:
            stats.regions += 1
            fused = _fuse_region(region, window, stats)
            # compare-branch fusion with the boundary BC; the flag
            # producer must not already be the tail of an earlier pair
            # (a micro-op belongs to at most one macro-op)
            if boundary is not None and boundary.op is UOp.BC and fused:
                last = fused[-1]
                last_is_tail = len(fused) >= 2 and fused[-2].fused
                if not last.fused and not last_is_tail \
                        and last.writes_flags \
                        and _can_pair(last, boundary):
                    fused[-1] = last.with_fused(True)
                    stats.pairs += 1
            out.extend(fused)
            region.clear()
        if boundary is not None:
            out.append(boundary)

    for uop in uops:
        if _is_boundary(uop):
            close_region(uop)
        else:
            region.append(uop)
    close_region(None)
    return out, stats
