"""Cracking: decompose x86lite instructions into fusible micro-ops.

This is the common core shared by every translation path in the system —
the software BBT, the SBT (which cracks and then optimizes), the XLTx86
backend functional unit, and the first level of the dual-mode frontend
decoder all call :func:`crack`.  That sharing is the repository's analogue
of the paper's observation that all four are "the same decode/crack work"
relocated to different places.

Architected GPR *r* lives in native register *r* (R0..R7).  Temporaries
R8..R10 are used inside a single instruction's cracked sequence and carry
no state between architected instructions.

Complex instructions (REP strings, DIV/IDIV, INT, HLT, CPUID, and any
16-bit-operand form) are *not* cracked; translators emit a ``VMCALL
INTERP_ONE`` so VMM software emulates them precisely — the software escape
hatch that keeps the hardware assists simple (Section 4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.isa.fusible.encoding import imm13_in_range
from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import UOp
from repro.isa.fusible.registers import (
    R_EXIT_TARGET,
    R_ZERO,
)
from repro.isa.x86lite.instruction import (
    ImmOperand,
    Instruction,
    MemOperand,
    Operand,
    RegOperand,
)
from repro.isa.x86lite.opcodes import Op
from repro.isa.x86lite.registers import Reg

# Per-instruction temporaries (all reachable from 16-bit micro-ops).
T0 = 8    # address temp
T1 = 9    # data temp
T2 = 10   # secondary data temp

#: x86lite ops the cracker handles directly (everything else is complex).
_SHIFT_UOPS = {Op.SHL: (UOp.SHL, UOp.SHLI), Op.SHR: (UOp.SHR, UOp.SHRI),
               Op.SAR: (UOp.SAR, UOp.SARI)}

_ACCUM_SHORT = {Op.ADD: UOp.ADD2, Op.SUB: UOp.SUB2, Op.AND: UOp.AND2,
                Op.OR: UOp.OR2, Op.XOR: UOp.XOR2}
_ACCUM_LONG = {Op.ADD: UOp.ADD, Op.ADC: UOp.ADC, Op.SUB: UOp.SUB,
               Op.SBB: UOp.SBB, Op.AND: UOp.AND, Op.OR: UOp.OR,
               Op.XOR: UOp.XOR}
_ACCUM_IMM = {Op.ADD: UOp.ADDI, Op.SUB: UOp.SUBI, Op.AND: UOp.ANDI,
              Op.OR: UOp.ORI, Op.XOR: UOp.XORI}

_SCALE_SHIFT = {1: 0, 2: 1, 4: 2, 8: 3}

MASK32 = 0xFFFFFFFF


class CrackError(Exception):
    """Raised on instructions the cracker cannot decompose."""


@dataclass
class CrackResult:
    """Outcome of cracking one architected instruction.

    ``uops`` is the micro-op body.  For control transfers (``cti`` True)
    the body contains only the *computation* part (e.g. the return-address
    push of a CALL, or target materialization into R29 for indirect
    transfers); the translator appends the block-exit stub.  For complex
    instructions (``cmplx`` True) the body is empty and translators must
    emit a VMM callout instead.
    """

    instr: Instruction
    uops: List[MicroOp] = field(default_factory=list)
    cmplx: bool = False
    cti: bool = False

    @property
    def uop_count(self) -> int:
        return len(self.uops)

    @property
    def byte_count(self) -> int:
        return sum(uop.length for uop in self.uops)


class _Emitter:
    """Accumulates micro-ops tagged with the architected address."""

    def __init__(self, addr: int) -> None:
        self.addr = addr
        self.uops: List[MicroOp] = []

    def emit(self, op: UOp, **kwargs) -> None:
        self.uops.append(MicroOp(op, x86_addr=self.addr, **kwargs))

    # -- immediate materialization ----------------------------------------

    def load_imm(self, rd: int, value: int) -> None:
        """Load a 32-bit constant into ``rd`` (1-2 micro-ops)."""
        value &= MASK32
        signed = value - 0x100000000 if value & 0x80000000 else value
        if imm13_in_range(UOp.ADDI, signed):
            self.emit(UOp.ADDI, rd=rd, rs1=R_ZERO, imm=signed)
            return
        self.emit(UOp.LUI, rd=rd, imm=value >> 13)
        low = value & 0x1FFF
        if low:
            self.emit(UOp.ORI, rd=rd, rs1=rd, imm=low)

    # -- addressing ------------------------------------------------------------

    def address(self, mem: MemOperand, temp: int = T0) -> Tuple[int, int]:
        """Materialize a memory operand's address.

        Returns ``(base_reg, disp13)`` such that the access is
        ``[base_reg + disp13]``; emits any micro-ops needed.
        """
        reg: int
        if mem.index is not None:
            shift = _SCALE_SHIFT[mem.scale]
            if shift:
                self.emit(UOp.SHLI, rd=temp, rs1=mem.index, imm=shift)
            else:
                self.emit(UOp.MOV2, rd=temp, rs1=mem.index)
            if mem.base is not None:
                self.emit(UOp.ADD2, rd=temp, rs1=mem.base)
            reg = temp
        elif mem.base is not None:
            reg = int(mem.base)
        else:
            reg = R_ZERO
        if imm13_in_range(UOp.LDW, mem.disp):
            return reg, mem.disp
        # large displacement: fold it into the address register
        if reg == temp:
            extra = T1 if temp == T0 else T2
            self.load_imm(extra, mem.disp)
            self.emit(UOp.ADD2, rd=temp, rs1=extra)
            return temp, 0
        self.load_imm(temp, mem.disp)
        if reg != R_ZERO:
            self.emit(UOp.ADD2, rd=temp, rs1=reg)
        return temp, 0

    def load_operand(self, operand: Operand, temp: int,
                     load_op: UOp = UOp.LDW) -> int:
        """Bring an operand's value into a register; returns the register."""
        if isinstance(operand, RegOperand):
            return int(operand.reg)
        if isinstance(operand, ImmOperand):
            self.load_imm(temp, operand.value)
            return temp
        reg, disp = self.address(operand, T0)
        self.emit(load_op, rd=temp, rs1=reg, imm=disp)
        return temp


def is_crackable(instr: Instruction) -> bool:
    """Whether the instruction has a direct micro-op decomposition.

    Mirrors the hardware assists' ``Flag_cmplx`` test: complex ops and all
    16-bit-operand forms are punted to VMM software.
    """
    if instr.is_complex or instr.width == 16:
        return False
    return True


def crack(instr: Instruction) -> CrackResult:
    """Crack one architected instruction into micro-ops."""
    if not is_crackable(instr):
        return CrackResult(instr, cmplx=True, cti=instr.is_control_transfer)

    emitter = _Emitter(instr.addr)
    op = instr.op
    flags = instr.writes_flags

    if op is Op.NOP:
        emitter.emit(UOp.NOP2)
    elif op is Op.MOV:
        _crack_mov(instr, emitter)
    elif op in (Op.MOVZX, Op.MOVSX):
        dst, src = instr.operands
        load_op = {(Op.MOVZX, 8): UOp.LDBU, (Op.MOVZX, 16): UOp.LDHU,
                   (Op.MOVSX, 8): UOp.LDBS, (Op.MOVSX, 16): UOp.LDHS}[
                       (op, src.size)]
        reg, disp = emitter.address(src)
        emitter.emit(load_op, rd=int(dst.reg), rs1=reg, imm=disp)
    elif op is Op.LEA:
        _crack_lea(instr, emitter)
    elif op is Op.CMOV:
        dst, src = instr.operands
        value = emitter.load_operand(src, T1)
        emitter.emit(UOp.SEL, rd=int(dst.reg), rs1=value, cond=instr.cond)
    elif op is Op.XCHG:
        _crack_xchg(instr, emitter)
    elif op in _ACCUM_LONG or op in (Op.CMP, Op.TEST):
        _crack_alu(instr, emitter)
    elif op in (Op.INC, Op.DEC):
        _crack_rmw_unary(instr, emitter,
                         UOp.INCF if op is Op.INC else UOp.DECF, flags)
    elif op is Op.NEG:
        _crack_neg(instr, emitter)
    elif op is Op.NOT:
        _crack_not(instr, emitter)
    elif op in _SHIFT_UOPS:
        _crack_shift(instr, emitter)
    elif op is Op.IMUL:
        _crack_imul(instr, emitter)
    elif op is Op.MUL:
        _crack_mul(instr, emitter)
    elif op is Op.PUSH:
        _crack_push(instr, emitter)
    elif op is Op.POP:
        _crack_pop(instr, emitter)
    elif op in (Op.MOVS, Op.STOS, Op.LODS):
        _crack_string(instr, emitter)
    elif op in (Op.JMP, Op.JCC, Op.CALL, Op.RET):
        return _crack_cti(instr, emitter)
    else:
        raise CrackError(f"no cracking rule for {instr}")

    return CrackResult(instr, emitter.uops)


# -- per-op helpers ----------------------------------------------------------

def _crack_mov(instr: Instruction, emitter: _Emitter) -> None:
    dst, src = instr.operands
    if isinstance(dst, RegOperand):
        if isinstance(src, RegOperand):
            emitter.emit(UOp.MOV2, rd=int(dst.reg), rs1=int(src.reg))
        elif isinstance(src, ImmOperand):
            emitter.load_imm(int(dst.reg), src.value)
        else:
            reg, disp = emitter.address(src)
            emitter.emit(UOp.LDW, rd=int(dst.reg), rs1=reg, imm=disp)
        return
    # store forms
    value = emitter.load_operand(src, T1)
    reg, disp = emitter.address(dst)
    emitter.emit(UOp.STW, rd=value, rs1=reg, imm=disp)


def _crack_lea(instr: Instruction, emitter: _Emitter) -> None:
    dst, src = instr.operands
    rd = int(dst.reg)
    reg, disp = emitter.address(src, temp=T0)
    if disp or reg == R_ZERO:
        emitter.emit(UOp.ADDI, rd=rd, rs1=reg, imm=disp)
    else:
        emitter.emit(UOp.MOV2, rd=rd, rs1=reg)


def _crack_xchg(instr: Instruction, emitter: _Emitter) -> None:
    dst, src = instr.operands
    src_reg = int(src.reg)
    if isinstance(dst, RegOperand):
        emitter.emit(UOp.MOV2, rd=T1, rs1=int(dst.reg))
        emitter.emit(UOp.MOV2, rd=int(dst.reg), rs1=src_reg)
        emitter.emit(UOp.MOV2, rd=src_reg, rs1=T1)
        return
    reg, disp = emitter.address(dst)
    emitter.emit(UOp.LDW, rd=T1, rs1=reg, imm=disp)
    emitter.emit(UOp.STW, rd=src_reg, rs1=reg, imm=disp)
    emitter.emit(UOp.MOV2, rd=src_reg, rs1=T1)


def _crack_alu(instr: Instruction, emitter: _Emitter) -> None:
    """ADD/ADC/SUB/SBB/AND/OR/XOR/CMP/TEST in all operand forms."""
    op = instr.op
    dst, src = instr.operands
    compare_only = op in (Op.CMP, Op.TEST)

    if isinstance(dst, RegOperand):
        rd = int(dst.reg)
        if op is Op.CMP:
            if isinstance(src, ImmOperand):
                signed = src.value - 0x100000000 \
                    if src.value & 0x80000000 else src.value
                if imm13_in_range(UOp.SUBI, signed):
                    # compare-with-immediate in one micro-op (rd = zero reg)
                    emitter.emit(UOp.SUBI, rd=R_ZERO, rs1=rd, imm=signed,
                                 setflags=True)
                    return
            value = emitter.load_operand(src, T1)
            emitter.emit(UOp.CMP2, rd=rd, rs1=value)
            return
        if op is Op.TEST:
            if isinstance(src, ImmOperand) \
                    and imm13_in_range(UOp.ANDI, src.value):
                emitter.emit(UOp.ANDI, rd=R_ZERO, rs1=rd, imm=src.value,
                             setflags=True)
                return
            value = emitter.load_operand(src, T1)
            emitter.emit(UOp.TEST2, rd=rd, rs1=value)
            return
        if isinstance(src, ImmOperand) and op in _ACCUM_IMM:
            signed = src.value - 0x100000000 if src.value & 0x80000000 \
                else src.value
            imm_op = _ACCUM_IMM[op]
            imm_ok = (imm13_in_range(imm_op, signed)
                      if imm_op in (UOp.ADDI, UOp.SUBI)
                      else imm13_in_range(imm_op, src.value))
            if imm_ok:
                imm = signed if imm_op in (UOp.ADDI, UOp.SUBI) \
                    else src.value
                emitter.emit(imm_op, rd=rd, rs1=rd, imm=imm,
                             setflags=True)
                return
        value = emitter.load_operand(src, T1)
        if op in _ACCUM_SHORT:
            emitter.emit(_ACCUM_SHORT[op], rd=rd, rs1=value, setflags=True)
        else:  # ADC / SBB
            emitter.emit(_ACCUM_LONG[op], rd=rd, rs1=rd, rs2=value,
                         setflags=True)
        return

    # memory destination: load / op / (store unless compare)
    value = emitter.load_operand(src, T2)
    reg, disp = emitter.address(dst)
    emitter.emit(UOp.LDW, rd=T1, rs1=reg, imm=disp)
    if op is Op.CMP:
        emitter.emit(UOp.CMP2, rd=T1, rs1=value)
        return
    if op is Op.TEST:
        emitter.emit(UOp.TEST2, rd=T1, rs1=value)
        return
    if op in _ACCUM_SHORT:
        emitter.emit(_ACCUM_SHORT[op], rd=T1, rs1=value, setflags=True)
    else:
        emitter.emit(_ACCUM_LONG[op], rd=T1, rs1=T1, rs2=value,
                     setflags=True)
    if not compare_only:
        emitter.emit(UOp.STW, rd=T1, rs1=reg, imm=disp)


def _crack_rmw_unary(instr: Instruction, emitter: _Emitter, uop: UOp,
                     flags: bool) -> None:
    (dst,) = instr.operands
    if isinstance(dst, RegOperand):
        rd = int(dst.reg)
        emitter.emit(uop, rd=rd, rs1=rd, setflags=flags)
        return
    reg, disp = emitter.address(dst)
    emitter.emit(UOp.LDW, rd=T1, rs1=reg, imm=disp)
    emitter.emit(uop, rd=T1, rs1=T1, setflags=flags)
    emitter.emit(UOp.STW, rd=T1, rs1=reg, imm=disp)


def _crack_neg(instr: Instruction, emitter: _Emitter) -> None:
    (dst,) = instr.operands
    if isinstance(dst, RegOperand):
        rd = int(dst.reg)
        emitter.emit(UOp.SUB, rd=rd, rs1=R_ZERO, rs2=rd, setflags=True)
        return
    reg, disp = emitter.address(dst)
    emitter.emit(UOp.LDW, rd=T1, rs1=reg, imm=disp)
    emitter.emit(UOp.SUB, rd=T1, rs1=R_ZERO, rs2=T1, setflags=True)
    emitter.emit(UOp.STW, rd=T1, rs1=reg, imm=disp)


def _crack_not(instr: Instruction, emitter: _Emitter) -> None:
    (dst,) = instr.operands
    emitter.emit(UOp.ADDI, rd=T2, rs1=R_ZERO, imm=-1)
    if isinstance(dst, RegOperand):
        rd = int(dst.reg)
        emitter.emit(UOp.XOR, rd=rd, rs1=rd, rs2=T2)
        return
    reg, disp = emitter.address(dst)
    emitter.emit(UOp.LDW, rd=T1, rs1=reg, imm=disp)
    emitter.emit(UOp.XOR, rd=T1, rs1=T1, rs2=T2)
    emitter.emit(UOp.STW, rd=T1, rs1=reg, imm=disp)


def _crack_shift(instr: Instruction, emitter: _Emitter) -> None:
    op = instr.op
    reg_uop, imm_uop = _SHIFT_UOPS[op]
    dst, count = instr.operands

    def emit_shift(target: int) -> None:
        if isinstance(count, ImmOperand):
            emitter.emit(imm_uop, rd=target, rs1=target,
                         imm=count.value & 31, setflags=True)
        else:  # by ECX
            emitter.emit(reg_uop, rd=target, rs1=target,
                         rs2=int(Reg.ECX), setflags=True)

    if isinstance(dst, RegOperand):
        emit_shift(int(dst.reg))
        return
    reg, disp = emitter.address(dst)
    emitter.emit(UOp.LDW, rd=T1, rs1=reg, imm=disp)
    emit_shift(T1)
    emitter.emit(UOp.STW, rd=T1, rs1=reg, imm=disp)


def _crack_imul(instr: Instruction, emitter: _Emitter) -> None:
    if len(instr.operands) == 1:
        (src,) = instr.operands
        value = emitter.load_operand(src, T1)
        eax, edx = int(Reg.EAX), int(Reg.EDX)
        emitter.emit(UOp.MULH, rd=T2, rs1=eax, rs2=value)
        emitter.emit(UOp.MULL, rd=eax, rs1=eax, rs2=value, setflags=True)
        emitter.emit(UOp.MOV2, rd=edx, rs1=T2)
        return
    if len(instr.operands) == 2:
        dst, src = instr.operands
        value = emitter.load_operand(src, T1)
        rd = int(dst.reg)
        emitter.emit(UOp.MULL, rd=rd, rs1=rd, rs2=value, setflags=True)
        return
    dst, src, imm = instr.operands
    value = emitter.load_operand(src, T1)
    emitter.load_imm(T2, imm.value)
    emitter.emit(UOp.MULL, rd=int(dst.reg), rs1=value, rs2=T2,
                 setflags=True)


def _crack_mul(instr: Instruction, emitter: _Emitter) -> None:
    (src,) = instr.operands
    value = emitter.load_operand(src, T1)
    eax, edx = int(Reg.EAX), int(Reg.EDX)
    emitter.emit(UOp.MULHU, rd=T2, rs1=eax, rs2=value)
    emitter.emit(UOp.MULLU, rd=eax, rs1=eax, rs2=value, setflags=True)
    emitter.emit(UOp.MOV2, rd=edx, rs1=T2)


def _crack_push(instr: Instruction, emitter: _Emitter) -> None:
    (src,) = instr.operands
    esp = int(Reg.ESP)
    if isinstance(src, RegOperand) and src.reg is Reg.ESP:
        emitter.emit(UOp.MOV2, rd=T1, rs1=esp)  # push old ESP
        value = T1
    else:
        value = emitter.load_operand(src, T1)
    emitter.emit(UOp.SUBI, rd=esp, rs1=esp, imm=4)
    emitter.emit(UOp.STW, rd=value, rs1=esp, imm=0)


def _crack_pop(instr: Instruction, emitter: _Emitter) -> None:
    (dst,) = instr.operands
    esp = int(Reg.ESP)
    rd = int(dst.reg)
    if rd == esp:  # pop esp: ESP becomes the loaded value
        emitter.emit(UOp.LDW, rd=esp, rs1=esp, imm=0)
        return
    emitter.emit(UOp.LDW, rd=rd, rs1=esp, imm=0)
    emitter.emit(UOp.ADDI, rd=esp, rs1=esp, imm=4)


def _crack_string(instr: Instruction, emitter: _Emitter) -> None:
    esi, edi, eax = int(Reg.ESI), int(Reg.EDI), int(Reg.EAX)
    if instr.op is Op.MOVS:
        emitter.emit(UOp.LDW, rd=T1, rs1=esi, imm=0)
        emitter.emit(UOp.STW, rd=T1, rs1=edi, imm=0)
        emitter.emit(UOp.ADDI, rd=esi, rs1=esi, imm=4)
        emitter.emit(UOp.ADDI, rd=edi, rs1=edi, imm=4)
    elif instr.op is Op.STOS:
        emitter.emit(UOp.STW, rd=eax, rs1=edi, imm=0)
        emitter.emit(UOp.ADDI, rd=edi, rs1=edi, imm=4)
    else:  # LODS
        emitter.emit(UOp.LDW, rd=eax, rs1=esi, imm=0)
        emitter.emit(UOp.ADDI, rd=esi, rs1=esi, imm=4)


def _crack_cti(instr: Instruction, emitter: _Emitter) -> CrackResult:
    """Control transfers: emit the computation part only.

    Indirect targets land in R29 (R_EXIT_TARGET); direct targets are known
    statically and the translator builds the exit stub itself.
    """
    op = instr.op
    esp = int(Reg.ESP)

    if op is Op.CALL:
        emitter.load_imm(T1, instr.next_addr)
        emitter.emit(UOp.SUBI, rd=esp, rs1=esp, imm=4)
        emitter.emit(UOp.STW, rd=T1, rs1=esp, imm=0)
    if op in (Op.JMP, Op.CALL) and instr.target is None:
        (target_operand,) = instr.operands
        if isinstance(target_operand, RegOperand):
            # R29 is outside the 16-bit format's register range
            emitter.emit(UOp.ADDI, rd=R_EXIT_TARGET,
                         rs1=int(target_operand.reg), imm=0)
        else:
            reg, disp = emitter.address(target_operand)
            emitter.emit(UOp.LDW, rd=R_EXIT_TARGET, rs1=reg, imm=disp)
    if op is Op.RET:
        emitter.emit(UOp.LDW, rd=R_EXIT_TARGET, rs1=esp, imm=0)
        pop_bytes = 4 + (instr.operands[0].value if instr.operands else 0)
        emitter.emit(UOp.ADDI, rd=esp, rs1=esp, imm=pop_bytes)

    return CrackResult(instr, emitter.uops, cti=True)
