"""The dynamic binary translation system (DBT) of the co-designed VM.

Staged translation per the paper: a light-weight basic block translator
(:mod:`~repro.translator.bbt`) for initial emulation, and an optimizing
superblock translator (:mod:`~repro.translator.sbt`) with macro-op fusion
(:mod:`~repro.translator.fusion`) for hotspots.  Translations live in code
caches (:mod:`~repro.translator.code_cache`) and are linked by chaining.
"""

from repro.translator.cracker import CrackError, CrackResult, crack, \
    is_crackable
from repro.translator.code_cache import (
    CodeCache,
    CodeCacheFull,
    ExitStub,
    Translation,
    TranslationDirectory,
)
from repro.translator.bbt import BasicBlockTranslator
from repro.translator.superblock import Superblock, SuperblockBlock, \
    form_superblock
from repro.translator.fusion import FusionStats, fuse_microops
from repro.translator.redundancy import RedundancyStats, \
    eliminate_redundant_loads
from repro.translator.sbt import SuperblockTranslator, \
    eliminate_dead_flags, invert_cond

__all__ = [
    "BasicBlockTranslator", "CodeCache", "CodeCacheFull", "CrackError",
    "CrackResult", "ExitStub", "FusionStats", "RedundancyStats",
    "Superblock", "SuperblockBlock", "SuperblockTranslator",
    "Translation", "TranslationDirectory", "crack",
    "eliminate_dead_flags", "eliminate_redundant_loads",
    "form_superblock", "fuse_microops", "invert_cond", "is_crackable",
]
