"""BBT — the light-weight basic block translator (stage 1 of Fig. 1b).

Produces a straightforward, unoptimized translation of one dynamic basic
block: cracked micro-ops in architected order, bracketed by an optional
software-profiling prologue and patchable exit stubs.  No reordering, no
fusing — exactly the paper's "simple basic block translation ... placed in
a code cache for repeated reuse".

Layout of a BBT translation::

    [profiling prologue]            (VM.soft / VM.be only)
    [cracked body, per x86 instruction]
    [terminator]
        direct JMP/CALL      -> one exit stub
        JCC                  -> BC over the fall-through stub + two stubs
        indirect JMP/CALL/RET -> VMEXIT via R29
        complex instruction  -> VMCALL INTERP_ONE
        block-size limit     -> fall-through exit stub
"""

from __future__ import annotations

import logging
from typing import List, Optional

from repro.faults.plane import fault_point
from repro.isa.fusible.encoding import encode_stream, stream_length
from repro.isa.fusible.microop import MicroOp
from repro.memory.address_space import AddressSpace
from repro.obs.metrics import metric_field
from repro.translator.code_cache import (
    ExitStub,
    Translation,
    TranslationDirectory,
)
from repro.translator.cracker import crack
from repro.translator.emit import (
    EXIT_STUB_BYTES,
    direct_exit_stub,
    indirect_exit,
    profile_prologue,
    scan_block,
    vmcall_complex,
)
from repro.isa.fusible.opcodes import UOp
from repro.isa.x86lite.instruction import Instruction
from repro.verify.sanitizer import check_stream

log = logging.getLogger("repro.translator")
from repro.isa.x86lite.opcodes import Op
from repro.isa.x86lite.registers import Cond

#: Where per-translation profiling counters live (concealed VMM data).
COUNTER_AREA_BASE = 0x2800_0000

#: Measured software-BBT translation overhead, in native instructions per
#: x86 instruction (Section 3.2: "∆BBT = 105"), and in cycles (Section
#: 5.3: 83 cycles software, 20 cycles with the XLTx86 assist).  The
#: functional translator does not consume cycles itself; the timing layer
#: charges these constants.
DELTA_BBT_NATIVE_INSTRUCTIONS = 105
DELTA_BBT_CYCLES_SOFTWARE = 83
DELTA_BBT_CYCLES_ASSISTED = 20


class BasicBlockTranslator:
    """Stage-1 translator; installs translations into the directory."""

    # registry-backed statistics (shared registry via the directory)
    blocks_translated = metric_field()
    instrs_translated = metric_field(name="bbt_instrs_translated")
    uops_emitted = metric_field(name="bbt_uops_emitted")
    hw_assisted_instrs = metric_field()
    hw_punted_instrs = metric_field()

    def __init__(self, directory: TranslationDirectory,
                 memory: AddressSpace,
                 embed_profiling: bool = True,
                 hot_threshold: int = 8000,
                 max_block_instrs: int = 64,
                 xlt_unit=None,
                 verify: bool = False) -> None:
        self.directory = directory
        self.memory = memory
        self.embed_profiling = embed_profiling
        self.hot_threshold = hot_threshold
        self.max_block_instrs = max_block_instrs
        #: debug mode: statically verify each stream before install
        self.verify = verify
        #: optional XLTx86 backend unit (VM.be): the translator's
        #: decode/crack step runs through the hardware model instead of
        #: the software path, falling back to software for punted cases.
        self.xlt_unit = xlt_unit
        self._next_counter = COUNTER_AREA_BASE
        # statistics (metric_field descriptors backed by this registry)
        self.metrics = directory.metrics
        self.blocks_translated = 0
        self.instrs_translated = 0
        self.uops_emitted = 0
        self.hw_assisted_instrs = 0
        self.hw_punted_instrs = 0

    # -- profiling counters ----------------------------------------------------

    def _allocate_counter(self) -> int:
        addr = self._next_counter
        self._next_counter += 4
        self.memory.write_u32(addr, self.hot_threshold)
        return addr

    def allocate_counter(self) -> int:
        """Allocate one armed countdown counter (warm-start loader)."""
        return self._allocate_counter()

    def reset_counter(self, translation: Translation,
                      value: Optional[int] = None) -> None:
        """Re-arm a translation's countdown counter (VMM policy)."""
        if translation.counter_addr is not None:
            self.memory.write_u32(translation.counter_addr,
                                  self.hot_threshold if value is None
                                  else value)

    # -- translation -----------------------------------------------------------

    def translate(self, entry: int) -> Translation:
        """Translate the basic block at architected address ``entry``."""
        fault_point("translate.bbt", entry=entry)
        instrs = scan_block(self.memory, entry, self.max_block_instrs)
        translation = Translation(entry=entry, kind="bbt",
                                  x86_addrs=[entry])

        uops: List[MicroOp] = []
        counter_addr = None
        if self.embed_profiling:
            counter_addr = self._allocate_counter()
            uops.extend(profile_prologue(counter_addr, entry))
        translation.counter_addr = counter_addr

        body_instrs = instrs[:-1]
        last = instrs[-1]
        for instr in body_instrs:
            uops.extend(self._crack_one(instr))

        exits: List[_ExitPlan] = []
        uops, exits = _emit_terminator(uops, last, crack(last))

        # relocate against the cache and materialize linkage records
        native_addr = self.directory.bbt_cache.reserve()
        data = encode_stream(uops)
        translation.native_addr = native_addr
        translation.instr_count = len(instrs)
        translation.uop_count = len(uops)
        translation.uops = uops
        for plan in exits:
            stub = ExitStub(stub_addr=native_addr + plan.offset,
                            kind=plan.kind, x86_target=plan.x86_target)
            translation.exits.append(stub)
        for offset, x86_addr in _side_entries(uops):
            if x86_addr is None:
                x86_addr = entry
            translation.side_table[native_addr + offset] = x86_addr

        if self.verify:
            check_stream(uops, force=True)
        self.directory.install(data, translation)
        self.blocks_translated += 1
        self.instrs_translated += len(instrs)
        self.uops_emitted += len(uops)
        self.metrics.histogram("bbt_block_instrs").observe(len(instrs))
        log.debug("bbt: %#x -> %#x (%d instr(s), %d uop(s))",
                  entry, native_addr, len(instrs), len(uops))
        return translation

    def _crack_one(self, instr: Instruction) -> List[MicroOp]:
        """Decode/crack one instruction, via XLTx86 when configured."""
        if self.xlt_unit is not None:
            window = self.memory.read(instr.addr, 16)
            result = self.xlt_unit.translate(window, instr.addr)
            if not result.flag_cmplx:
                self.hw_assisted_instrs += 1
                return result.uops
            # hardware punted (oversized body etc.): software handles it
            self.hw_punted_instrs += 1
        return crack(instr).uops


class _ExitPlan:
    """An exit stub position within an un-relocated micro-op list."""

    def __init__(self, offset: int, kind: str,
                 x86_target: Optional[int]) -> None:
        self.offset = offset
        self.kind = kind
        self.x86_target = x86_target


def _emit_terminator(uops: List[MicroOp], last: Instruction, cracked
                     ) -> "tuple[List[MicroOp], List[_ExitPlan]]":
    """Append the block terminator; returns (uops, exit plans)."""
    exits: List[_ExitPlan] = []
    uops = list(uops)

    if cracked.cmplx:
        uops.extend(vmcall_complex(last.addr))
        return uops, exits

    uops.extend(cracked.uops)  # CTI computation part (push ret, R29, ...)

    if last.op is Op.JCC:
        uops.append(MicroOp(UOp.BC, cond=Cond(last.cond), imm=EXIT_STUB_BYTES,
                            x86_addr=last.addr))
        offset = stream_length(uops)
        uops.extend(direct_exit_stub(last.next_addr, last.addr))
        exits.append(_ExitPlan(offset, "fallthrough", last.next_addr))
        offset = stream_length(uops)
        uops.extend(direct_exit_stub(last.target, last.addr))
        exits.append(_ExitPlan(offset, "taken", last.target))
        return uops, exits

    if last.is_control_transfer and last.target is not None:
        offset = stream_length(uops)
        uops.extend(direct_exit_stub(last.target, last.addr))
        exits.append(_ExitPlan(offset, "jump", last.target))
        return uops, exits

    if last.is_control_transfer:  # indirect JMP/CALL or RET
        offset = stream_length(uops)
        uops.extend(indirect_exit(last.addr))
        exits.append(_ExitPlan(offset, "indirect", None))
        return uops, exits

    # block ended at the size limit: fall through to the next instruction
    offset = stream_length(uops)
    uops.extend(direct_exit_stub(last.next_addr, last.addr))
    exits.append(_ExitPlan(offset, "fallthrough", last.next_addr))
    return uops, exits


def _side_entries(uops: List[MicroOp]):
    """Yield (byte offset, x86_addr) for every VMCALL in the stream."""
    offset = 0
    for uop in uops:
        if uop.op is UOp.VMCALL:
            yield offset, uop.x86_addr
        offset += uop.length
