"""Redundant-load elimination and store-to-load forwarding.

A classic superblock-scope optimization the SBT applies before fusion:
cracked CISC code is full of reloads — read-modify-write sequences
followed by uses of the same location, repeated stack slots, and so on.
Within a region (no control transfers, no VMM barriers), a load from
``[base + disp]`` whose value is already in a register — from an earlier
load or an earlier store to the same address — becomes a register move,
which is shorter (16-bit form), faster, and a better fusion head.

Safety model (conservative, alias-free by construction):

* only word loads/stores (``LDW``/``STW``) participate;
* *any* store invalidates every remembered location except the one it
  itself defines (two symbolic addresses may alias);
* redefining a location's base register or value register forgets it;
* regions end at branches and VMM barriers (a VMCALL may run the
  interpreter, which can write anything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import BARRIER_OPS, UOp
from repro.isa.fusible.registers import SHORT_FORM_REG_LIMIT


@dataclass
class RedundancyStats:
    """Outcome accounting for one elimination pass."""

    loads_eliminated: int = 0
    regions: int = 0


def _is_boundary(uop: MicroOp) -> bool:
    return uop.is_branch or uop.op in BARRIER_OPS


class _AvailableLocations:
    """Tracks which memory words are known to live in registers."""

    def __init__(self) -> None:
        #: (base_reg, disp) -> register currently holding the value
        self._values: Dict[Tuple[int, int], int] = {}

    def lookup(self, base: int, disp: int) -> Optional[int]:
        return self._values.get((base, disp))

    def define(self, base: int, disp: int, value_reg: int) -> None:
        self._values[(base, disp)] = value_reg

    def clobber_stores(self, except_key: Optional[Tuple[int, int]] = None
                       ) -> None:
        """A store happened: distinct symbolic addresses may alias."""
        if except_key is None:
            self._values.clear()
            return
        kept = self._values.get(except_key)
        self._values.clear()
        if kept is not None:
            self._values[except_key] = kept

    def clobber_register(self, reg: Optional[int]) -> None:
        """``reg`` was redefined: forget locations involving it."""
        if reg is None:
            return
        stale = [key for key, value in self._values.items()
                 if value == reg or key[0] == reg]
        for key in stale:
            del self._values[key]


def _rewrite_to_move(load: MicroOp, source_reg: int) -> Optional[MicroOp]:
    """LDW rd, disp(base) whose value is in ``source_reg`` -> MOV2."""
    if load.rd == source_reg:
        return MicroOp(UOp.NOP2, x86_addr=load.x86_addr,
                       fused=load.fused)
    if load.rd < SHORT_FORM_REG_LIMIT and \
            source_reg < SHORT_FORM_REG_LIMIT:
        return MicroOp(UOp.MOV2, rd=load.rd, rs1=source_reg,
                       x86_addr=load.x86_addr, fused=load.fused)
    # out of the 16-bit format's range: use an OR with the zero register
    return MicroOp(UOp.ADDI, rd=load.rd, rs1=source_reg, imm=0,
                   x86_addr=load.x86_addr, fused=load.fused)


def _process_region(region: List[MicroOp],
                    stats: RedundancyStats) -> List[MicroOp]:
    available = _AvailableLocations()
    out: List[MicroOp] = []
    for uop in region:
        if uop.op is UOp.LDW:
            key = (uop.rs1, uop.imm)
            held = available.lookup(*key)
            if held is not None:
                replacement = _rewrite_to_move(uop, held)
                stats.loads_eliminated += 1
                available.clobber_register(uop.rd)
                if uop.rd != held:
                    available.define(key[0], key[1], uop.rd)
                out.append(replacement)
                continue
            available.clobber_register(uop.rd)
            if uop.rd != uop.rs1:  # rd==base would self-invalidate
                available.define(uop.rs1, uop.imm, uop.rd)
            out.append(uop)
            continue
        if uop.op is UOp.STW:
            key = (uop.rs1, uop.imm)
            available.clobber_stores(except_key=key)
            available.define(key[0], key[1], uop.rd)
            out.append(uop)
            continue
        if uop.is_store or uop.op in (UOp.LDHU, UOp.LDHS, UOp.LDBU,
                                      UOp.LDBS, UOp.LDF):
            # sub-word / wide accesses: give up on everything
            available.clobber_stores()
            available.clobber_register(uop.dest())
            out.append(uop)
            continue
        available.clobber_register(uop.dest())
        out.append(uop)
    return out


def eliminate_redundant_loads(uops: List[MicroOp]
                              ) -> Tuple[List[MicroOp], RedundancyStats]:
    """Run the pass over a micro-op body; region-scoped and safe."""
    stats = RedundancyStats()
    out: List[MicroOp] = []
    region: List[MicroOp] = []
    for uop in uops:
        if _is_boundary(uop):
            if region:
                stats.regions += 1
                out.extend(_process_region(region, stats))
                region = []
            out.append(uop)
        else:
            region.append(uop)
    if region:
        stats.regions += 1
        out.extend(_process_region(region, stats))
    return out, stats
