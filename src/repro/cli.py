"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run PROGRAM.asm [--config NAME] [--hot-threshold N]`` — assemble and
  run an x86lite program on the functional VM, print its output and the
  execution report.
* ``startup [--app NAME] [--instrs N]`` — simulate the memory-startup
  scenario for one application under all configurations; print the
  normalized curves and breakeven points (Fig. 8 style).
* ``breakeven [--instrs N]`` — the full Fig. 9 per-application table.
* ``profile [WORKLOAD] [--top N] [--instrs N]`` — with no workload, the
  Fig. 3 execution-frequency profile; with a workload, run it traced and
  print the cycle-attribution ledger: Eq. 1 per-phase totals, the
  startup timeline and the top-N blocks by translation overhead (see
  :mod:`repro.obs.ledger` and ``docs/observability.md``).
* ``trace WORKLOAD [--out FILE]`` — run a workload with event tracing
  enabled and export a Chrome/Perfetto-loadable ``trace_event`` JSON
  document (load it at https://ui.perfetto.dev); includes the ledger's
  per-phase cycle attribution in ``metadata``.
* ``configs`` — list the machine configurations (Table 2).
* ``verify [--workload NAME|all] [--program FILE] [--json]`` — run a
  workload with the translation verifier armed and report every
  invariant violation with micro-op-level diagnostics (see
  :mod:`repro.verify` and ``docs/verifier.md``).
* ``cache {save,load,stats,gc,fsck} [PROGRAM] [--cache-dir DIR]`` — the
  persistent translation repository: ``save`` cold-runs a program and
  snapshots its translations, ``load`` warm-starts from the repository
  (zero BBT translations for previously seen blocks), ``stats`` and
  ``gc`` manage the on-disk store, ``fsck [--repair]`` detects and
  repairs on-disk damage — torn writes, corrupt objects, dangling
  manifest references (see :mod:`repro.persist`, ``docs/persistence.md``
  and ``docs/robustness.md``).
* ``cache {push,pull} PROGRAM --server ADDR [--timeout S] [--retries N]``
  — the same save/load flows through a shared translation-cache server
  (``unix:<path>`` or ``host:port``): ``push`` uploads a cold run's
  translations, ``pull`` warm-starts from the server.  Any server
  failure degrades to the local ``--cache-dir`` repository and
  ultimately to cold translation (see ``docs/cache_server.md``).
* ``serve [--socket PATH | --port N] [--cache-dir DIR] [--max-conns N]
  [--shard-id NAME --role {primary,replica}]`` — run the shared
  translation-cache server over one repository until SIGTERM/SIGINT,
  then drain gracefully (finish in-flight requests, release the writer
  lease, print per-op latency percentiles); ``--max-conns`` rejects
  excess clients with a retryable ``busy`` error; ``--shard-id`` /
  ``--role`` tag the server's wire ``health`` answer for cluster
  membership.
* ``cluster {health,repair} --cluster SPEC`` — the sharded/replicated
  cluster tier (:mod:`repro.cluster`, ``docs/cluster.md``): ``health``
  prints every replica's liveness/lease state via the wire ``health``
  op plus each endpoint's circuit-breaker state (open/half-open/
  closed, consecutive failures), ``repair`` runs one anti-entropy pass
  (diff replica manifests, re-replicate missing records).  ``SPEC`` is
  ``shard0=h:p,h:p;shard1=...`` or ``@spec.json``.
* ``monitor --cluster SPEC [--once|--watch] [--slo @file.json]`` — the
  central telemetry collector (:mod:`repro.obs.collector`,
  ``docs/observability.md``): scrape every replica's wire
  ``telemetry`` op, merge the metric registries exactly, evaluate SLO
  verdicts (pass/warn/fail with burn accounting) and print anomalies;
  exits 1 while any SLO is failing.
* ``bench {diff,show} [--against last|first] [--tolerance PCT]`` — the
  bench-trajectory gate (:mod:`repro.obs.trajectory`): benchmarks
  append one row per run to ``results/bench_history.jsonl``; ``diff``
  compares each bench's newest row to its same-fingerprint baseline
  and exits 1 on regressions beyond the tolerance.
* ``fleet {run,sweep,report}`` — the mass-boot scenario harness
  (:mod:`repro.fleet`, ``docs/fleet.md``): boot N instances through a
  worker pool against a self-hosted cache server (``run``; with
  ``--shards``/``--replicas`` > 1, against a self-hosted sharded
  cluster), expand a
  {N, boot policy, image policy} grid and boot every scenario
  (``sweep``, emitting a deterministic ``results/fleet_boot.json``
  with p50/p95/p99 time-to-steady-state and per-rank amortization
  curves), or validate and pretty-print a saved report (``report``).
  ``--collect`` attaches the telemetry collector to the hosted
  server(s): SLO verdicts embed in the report and the merged trace
  gains per-server span lanes with client→server flow arrows.
* ``lint [PATHS...] [--strict] [--json] [--rules IDS] [--no-style]``
  — run reprolint, the project-invariant static analyzer (determinism,
  lock discipline, fault-point coverage, taxonomy conformance, plus the
  old minilint style pack); see :mod:`repro.lint` and
  ``docs/static_analysis.md``.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

from repro.analysis import normalized_curve
from repro.analysis.breakeven import format_breakeven
from repro.analysis.frequency_profile import suite_frequency_profile
from repro.analysis.reporting import format_table
from repro.analysis.startup_curves import log_grid
from repro.core import ALL_CONFIGS, CoDesignedVM
from repro.isa.x86lite import assemble
from repro.obs.logutil import LOG_LEVELS, configure_logging
from repro.timing import simulate_startup
from repro.timing.sampler import crossover_cycles
from repro.workloads import generate_workload, winstone_app, \
    winstone_suite

log = logging.getLogger("repro.cli")


def _config_by_name(name: str):
    configs = ALL_CONFIGS()
    if name in configs:
        return configs[name]
    # forgiving aliases: soft / be / fe / ref / interp
    aliases = {"ref": "Ref: superscalar", "soft": "VM.soft",
               "be": "VM.be", "fe": "VM.fe",
               "interp": "VM: Interp & SBT"}
    if name in aliases:
        return configs[aliases[name]]
    raise SystemExit(f"unknown configuration {name!r}; choose from "
                     f"{sorted(configs) + sorted(aliases)}")


def cmd_run(args: argparse.Namespace) -> int:
    with open(args.program) as handle:
        source = handle.read()
    config = _config_by_name(args.config)
    vm = CoDesignedVM(config, hot_threshold=args.hot_threshold)
    vm.load(assemble(source))
    report = vm.run(max_instructions=args.max_instructions)
    for item in report.output:
        print(item)
    print()
    print(report.summary())
    return report.exit_code or 0


def cmd_startup(args: argparse.Namespace) -> int:
    app = winstone_app(args.app)
    workload = generate_workload(app, dyn_instrs=args.instrs,
                                 seed=args.seed)
    configs = ALL_CONFIGS()
    results = {name: simulate_startup(config, workload)
               for name, config in configs.items()}
    grid = log_grid(1e4, max(r.total_cycles
                             for r in results.values()), per_decade=2)
    names = list(configs)
    rows = [[f"{cycles:.0e}"]
            + [normalized_curve(results[name], app.ipc_ref,
                                [cycles])[0] for name in names]
            for cycles in grid]
    print(format_table(["cycles"] + names, rows,
                       title=f"{app.name}: normalized aggregate IPC "
                             f"(memory startup, {args.instrs:,} instrs)"))
    reference = results["Ref: superscalar"]
    print("\nbreakeven vs reference:")
    for name in names[1:]:
        point = crossover_cycles(results[name].series,
                                 reference.series, start=1e4)
        print(f"  {name:18s} {format_breakeven(point)}")
    return 0


def cmd_breakeven(args: argparse.Namespace) -> int:
    configs = ALL_CONFIGS()
    vm_names = ["VM.soft", "VM.be", "VM.fe"]
    rows = []
    for app in winstone_suite():
        workload = generate_workload(app, dyn_instrs=args.instrs,
                                     seed=args.seed)
        reference = simulate_startup(configs["Ref: superscalar"],
                                     workload)
        row = [app.name]
        for name in vm_names:
            result = simulate_startup(configs[name], workload)
            row.append(format_breakeven(crossover_cycles(
                result.series, reference.series, start=1e4)))
        rows.append(row)
    print(format_table(["benchmark"] + vm_names, rows,
                       title="breakeven points (Fig. 9)"))
    return 0


def _traced_run(args: argparse.Namespace) -> CoDesignedVM:
    """Assemble, load and run one workload with tracing enabled."""
    source = _program_source(args.workload)
    config = _config_by_name(args.config).with_(trace=True)
    vm = CoDesignedVM(config, hot_threshold=args.hot_threshold)
    vm.load(assemble(source))
    vm.run(max_instructions=args.max_instructions)
    return vm


def cmd_trace(args: argparse.Namespace) -> int:
    vm = _traced_run(args)
    from repro.obs.export import serialize_trace, validate_trace
    doc = vm.export_trace(metadata={"workload": args.workload})
    problems = validate_trace(doc)
    if problems:
        for problem in problems:
            print(f"trace validation: {problem}", file=sys.stderr)
        return 1
    text = serialize_trace(doc)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {len(doc['traceEvents'])} event(s) to {args.out} "
              f"({vm.ledger.total:.0f} simulated cycles attributed); "
              f"load it at https://ui.perfetto.dev")
    else:
        print(text, end="")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    if args.workload:
        vm = _traced_run(args)
        print(vm.ledger.format())
        top = vm.ledger.top_blocks("bbt_translation", limit=args.top)
        if top:
            print(f"\ntop {len(top)} block(s) by BBT translation "
                  f"overhead:")
            for addr, cycles in top:
                print(f"  {addr:#010x}  {cycles:12.0f} cycles")
        return 0
    workloads = [generate_workload(app, dyn_instrs=args.instrs,
                                   seed=args.seed)
                 for app in winstone_suite()]
    profile = suite_frequency_profile(workloads)
    rows = [[f"{bucket:,}+", static / 1000, 100 * fraction]
            for bucket, static, fraction
            in zip(profile.buckets, profile.static_instrs,
                   profile.dynamic_fractions())]
    print(format_table(
        ["exec count", "static instrs (K)", "dynamic %"], rows,
        title="execution frequency profile (Fig. 3)"))
    print(f"\nstatic above 8000-exec threshold: "
          f"{profile.static_above(8000) / 1000:.1f}K")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import VerifierReport, sanitizer, verify_directory
    from repro.workloads.programs import PROGRAMS

    programs = {}
    if args.program:
        try:
            with open(args.program) as handle:
                programs[args.program] = handle.read()
        except OSError as error:
            raise SystemExit(f"cannot read program: {error}")
    else:
        if args.workload == "all":
            programs.update(PROGRAMS)
        elif args.workload in PROGRAMS:
            programs[args.workload] = PROGRAMS[args.workload]
        else:
            raise SystemExit(f"unknown workload {args.workload!r}; "
                             f"choose from {sorted(PROGRAMS)} or 'all'")

    config = _config_by_name(args.config)
    total = VerifierReport()
    per_workload = {}
    for name, source in programs.items():
        vm = CoDesignedVM(config, hot_threshold=args.hot_threshold)
        vm.load(assemble(source))
        with sanitizer.collecting() as collected:
            vm.run(max_instructions=args.max_instructions)
            # final sweep over the steady-state caches: catches chaining
            # and redirection states that install-time checks predate
            if vm.runtime is not None:
                collected.merge(verify_directory(vm.runtime.directory))
        total.merge(collected)
        per_workload[name] = collected

    if args.json:
        payload = total.to_dict()
        payload["workloads"] = {name: report.to_dict()
                                for name, report in per_workload.items()}
        print(json.dumps(payload, indent=2))
    else:
        for name, report in per_workload.items():
            status = "ok" if report.ok else \
                f"{len(report.violations)} violation(s)"
            print(f"{name}: {report.translations_checked} translation(s) "
                  f"verified, {status}")
        print()
        print(total.format())
    return 0 if total.ok else 1


def _program_source(name_or_path: str) -> str:
    """Resolve a seed-workload name or an assembly file path to source."""
    from repro.workloads.programs import PROGRAMS
    if name_or_path in PROGRAMS:
        return PROGRAMS[name_or_path]
    try:
        with open(name_or_path) as handle:
            return handle.read()
    except OSError as error:
        raise SystemExit(
            f"{name_or_path!r} is neither a seed workload "
            f"({sorted(PROGRAMS)}) nor a readable file: {error}")


def cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.cacheserver import CacheServer
    if args.socket and args.port:
        raise SystemExit("choose one of --socket and --port")
    server = CacheServer(args.cache_dir, socket_path=args.socket,
                         host=args.host, port=args.port,
                         max_conns=args.max_conns,
                         max_queue_depth=args.max_queue_depth,
                         shed_retry_after=args.shed_retry_after,
                         shard_id=args.shard_id, role=args.role)
    address = server.start()
    print(f"serving translation cache {args.cache_dir} on {address}",
          flush=True)

    stop = threading.Event()

    def _request_stop(signum, frame):  # pragma: no cover - signal path
        log.info("received signal %d; draining", signum)
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _request_stop)
        except (ValueError, OSError):  # pragma: no cover - not main
            pass                       # thread (e.g. embedded): no
            #                            signal-driven drain available
    try:
        stop.wait(args.max_seconds)
    except KeyboardInterrupt:   # pragma: no cover - handler not bound
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        clean = server.drain(grace=args.drain_grace)
        stats = server.stats.to_dict()
        print(f"served {sum(stats['requests'].values())} request(s) "
              f"over {stats['connections']} connection(s) "
              f"({stats['conns_rejected']} rejected); "
              f"{stats['records_served']} record(s) served, "
              f"{stats['records_received']} received "
              f"({stats['objects_deduped']} deduped); drain "
              f"{'clean' if clean else 'cut idle connection(s)'}")
        for op, entry in sorted(stats["latency"].items()):
            print(f"  {op:<9s} n={entry['count']:<5d} "
                  f"p50={_fmt_ms(entry['p50'])} "
                  f"p95={_fmt_ms(entry['p95'])} "
                  f"p99={_fmt_ms(entry['p99'])}")
    return 0


def _fmt_ms(value) -> str:
    """Format a latency percentile that may be None (an op counted but
    never timed — e.g. every request failed before the observe).  The
    JSON surface keeps the null; the human surface prints '-'."""
    return "-" if value is None else f"{value:.3f}ms"


def _csv_list(text, cast=str):
    return [cast(item) for item in str(text).split(",") if item]


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import (FleetReport, FleetScenario, expand_grid,
                             export_fleet_trace, run_sweep,
                             serialize_report, validate_report)

    if args.action == "report":
        if not args.input:
            raise SystemExit("fleet report requires a report JSON file")
        with open(args.input) as handle:
            doc = json.load(handle)
        print(FleetReport(doc).format())
        problems = validate_report(doc)
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1 if problems else 0

    fixed = dict(config=args.config, warm=args.warm,
                 workload=args.workload,
                 faults=tuple(_csv_list(args.faults))
                 if args.faults else (),
                 seed=args.seed, workers=args.workers, pool=args.pool,
                 hot_threshold=args.hot_threshold,
                 max_instructions=args.max_instructions,
                 shards=args.shards, replicas=args.replicas,
                 request_budget=args.request_budget,
                 max_queue_depth=args.max_queue_depth,
                 collect=args.collect)
    try:
        if args.action == "run":
            scenarios = [FleetScenario(
                n=int(args.n) if args.n else 8,
                boot_policy=args.boot_policy or "all_at_once",
                image_policy=args.image_policy or "one", **fixed)]
        else:   # sweep
            axes = {
                "n": _csv_list(args.n, int) if args.n else [8, 64],
                "boot_policy": _csv_list(args.boot_policy)
                if args.boot_policy
                else ["all_at_once", "one_then_others"],
                "image_policy": _csv_list(args.image_policy)
                if args.image_policy else ["one", "one_per_vm"],
            }
            scenarios = expand_grid(axes, **fixed)
    except ValueError as error:
        raise SystemExit(str(error))

    def progress(result):
        print(f"booted {result.scenario.label()}: "
              f"arch_ok={result.arch_ok}", flush=True)

    results = run_sweep(scenarios, progress=progress)
    report = FleetReport.from_results(results)
    print()
    print(report.format())

    out = args.out
    if out is None and args.action == "sweep":
        out = "results/fleet_boot.json"
    if out:
        from pathlib import Path
        Path(out).parent.mkdir(parents=True, exist_ok=True)
        Path(out).write_text(serialize_report(report.to_dict()))
        print(f"\nfleet report written to {out}")
    if args.trace_out:
        from repro.obs.export import dump_trace
        dump_trace(export_fleet_trace(results[0]), args.trace_out)
        print(f"fleet trace written to {args.trace_out} "
              f"(load at https://ui.perfetto.dev)")

    problems = validate_report(report.to_dict())
    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    if problems or not all(r.arch_ok for r in results):
        return 1
    return 0


def _cluster_spec(text: str):
    """Parse a ``--cluster`` value: a spec string
    (``shard0=host:port,host:port;shard1=...``) or ``@file.json``
    holding a spec document."""
    from repro.cluster import ClusterSpec
    from repro.persist import parse_address
    if text.startswith("@"):
        with open(text[1:]) as handle:
            spec = ClusterSpec.parse(json.load(handle))
    else:
        spec = ClusterSpec.parse(text)
    for address in spec.addresses():
        parse_address(address)      # unusable addresses fail here, as
    return spec                     # a clean CLI error, not mid-request


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterRepository, anti_entropy
    try:
        spec = _cluster_spec(args.cluster)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        raise SystemExit(f"bad --cluster spec: {error}")

    if args.action == "repair":
        report = anti_entropy(spec, timeout=args.timeout,
                              retries=args.retries)
        print(report.format())
        return 0 if report.ok else 1

    # health: per-group, per-endpoint breaker + server health answers
    client = ClusterRepository(spec, timeout=args.timeout,
                               retries=args.retries)
    try:
        view = client.health_view()
    finally:
        client.close()
    failures = 0
    for group in sorted(view):
        live = sum(1 for entry in view[group] if entry["health"])
        total = len(view[group])
        status = "ok" if live else "DOWN"
        print(f"{status:4s} {group}: {live}/{total} replica(s) live "
              f"(write quorum {client.quorum_for(group)})")
        for entry in view[group]:
            health = entry["health"]
            if health is None:
                state = "unreachable"
            else:
                lease = health.get("lease") or {}
                state = (f"{health.get('role', '?')}, "
                         f"{health.get('objects', 0)} object(s)")
                if health.get("draining"):
                    state += ", draining"
                if lease.get("held"):
                    state += (", lease held"
                              + (" (expired)" if lease.get("expired")
                                 else ""))
            breaker = f"breaker {entry.get('breaker', 'closed')}"
            if entry.get("consecutive_failures"):
                breaker += (f" ({entry['consecutive_failures']} "
                            f"consecutive failure(s))")
            print(f"       {entry['address']:<24s} {state} [{breaker}]")
        failures += not live
    return 1 if failures else 0


def _format_monitor(snapshot: dict) -> str:
    """Human view of one collector snapshot: targets, indicators,
    verdicts, anomalies."""
    lines = [f"scrape #{snapshot['scrapes']}"]
    for key, target in snapshot["targets"].items():
        if target["up"]:
            state = (f"up    {target.get('role') or '?':<8s} "
                     f"{target.get('objects', 0)} object(s)")
            if target.get("draining"):
                state += ", draining"
        else:
            state = "DOWN"
        address = target.get("address", "")
        lines.append(f"  {key:<20s} {state}"
                     f"{'  @ ' + address if address else ''}")
    lines.append("indicators:")
    for name, value in snapshot["indicators"].items():
        shown = "-" if value is None else f"{value:.4g}"
        lines.append(f"  {name:<22s} {shown}")
    lines.append("slo:")
    for verdict in snapshot["slo"]:
        value = verdict["value"]
        shown = "-" if value is None else f"{value:.4g}"
        lines.append(
            f"  {verdict['status'].upper():<5s} {verdict['name']:<22s} "
            f"value={shown} warn>{verdict['warn']:g} "
            f"fail>{verdict['fail']:g} burn={verdict['burn']:g}")
    if snapshot["anomalies"]:
        lines.append("anomalies:")
        lines.extend(f"  {problem}"
                     for problem in snapshot["anomalies"])
    else:
        lines.append("anomalies: none")
    return "\n".join(lines)


def cmd_monitor(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.collector import ClusterCollector
    from repro.obs.slo import load_slo_file, worst_status
    try:
        spec = _cluster_spec(args.cluster)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        raise SystemExit(f"bad --cluster spec: {error}")
    slos = None
    if args.slo:
        try:
            slos = load_slo_file(args.slo.lstrip("@"))
        except (OSError, ValueError) as error:
            raise SystemExit(f"bad --slo file: {error}")

    collector = ClusterCollector(spec, timeout=args.timeout,
                                 retries=args.retries, slos=slos)
    exit_code = 0
    snapshot = None
    try:
        index = 0
        while True:
            if index:
                _time.sleep(args.interval)
            collector.scrape()
            snapshot = collector.snapshot(canonical=False)
            if args.json:
                print(json.dumps(snapshot, indent=2, sort_keys=True))
            else:
                print(_format_monitor(snapshot))
            exit_code = 1 if worst_status(snapshot["slo"]) == "fail" \
                else 0
            index += 1
            if not args.watch:
                break               # --once (the default)
            if args.iterations and index >= args.iterations:
                break
    except KeyboardInterrupt:       # pragma: no cover - interactive
        pass
    finally:
        collector.close()
    if args.out and snapshot is not None:
        from pathlib import Path
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"monitor snapshot written to {args.out}")
    return exit_code


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.trajectory import (bench_diff, format_diff,
                                      load_history)
    try:
        rows = load_history(args.history)
    except ValueError as error:
        raise SystemExit(str(error))

    if args.action == "show":
        if not rows:
            print(f"no bench history at {args.history}")
            return 0
        for row in rows[-args.limit:]:
            print(json.dumps(row, sort_keys=True,
                             separators=(",", ":")))
        return 0

    # diff: the trajectory regression gate
    if not rows:
        print(f"no bench history at {args.history}: nothing to "
              f"compare (gate passes vacuously)")
        return 0
    try:
        regressions, comparisons = bench_diff(
            rows, against=args.against, tolerance=args.tolerance)
    except ValueError as error:
        raise SystemExit(str(error))
    if args.json:
        print(json.dumps({"regressions": regressions,
                          "comparisons": comparisons},
                         indent=2, sort_keys=True))
    else:
        print(format_diff(regressions, comparisons))
    return 1 if regressions else 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.persist import RemoteRepository, TranslationRepository
    remote = None
    if args.action in ("push", "pull"):
        if not args.server:
            raise SystemExit(f"cache {args.action} requires --server "
                             "(unix:<path> or host:port)")
        remote = RemoteRepository(args.server, local=args.cache_dir,
                                  timeout=args.timeout,
                                  retries=args.retries)
        repo = remote
    else:
        repo = TranslationRepository(args.cache_dir)

    if args.action == "stats":
        print(repo.stats().format())
        return 0

    if args.action == "gc":
        report = repo.gc(args.budget)
        print(report.format())
        return 0

    if args.action == "fsck":
        report = repo.fsck(repair=args.repair)
        print(report.format())
        # check-only mode signals damage through the exit code so CI
        # can gate on it; a repairing pass that settled everything is 0
        if args.repair:
            return 0 if repo.fsck(repair=False).ok else 1
        return 0 if report.ok else 1

    if not args.program:
        raise SystemExit(f"cache {args.action} requires a program "
                         "(seed workload name or assembly file)")
    source = _program_source(args.program)
    config = _config_by_name(args.config)
    vm = CoDesignedVM(config, hot_threshold=args.hot_threshold)
    vm.load(assemble(source))
    destination = args.server if remote is not None else args.cache_dir

    if args.action in ("save", "push"):
        # cold run to populate the code caches, then snapshot them
        report = vm.run(max_instructions=args.max_instructions)
        written = vm.save_translations(repo)
        print(report.summary())
        print(f"\nsaved {written} new translation record(s) "
              f"to {destination}")
        _print_degradation(remote)
        return report.exit_code or 0

    # load/pull: warm-start from the repository/server, then run
    load_report = vm.warm_start(repo)
    print(load_report.format())
    _print_degradation(remote)
    print()
    report = vm.run(max_instructions=args.max_instructions)
    for item in report.output:
        print(item)
    print()
    print(report.summary())
    return report.exit_code or 0


def _print_degradation(remote) -> None:
    """One line when a shared-cache request had to degrade."""
    if remote is None:
        return
    stats = remote.remote_stats
    if stats.fallbacks or stats.retries:
        print(f"shared cache: {stats.requests} request(s), "
              f"{stats.retries} retrie(s), {stats.fallbacks} "
              f"fallback(s) to local/cold "
              f"(breaker opened {stats.breaker_opens}x)")


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint
    return run_lint(args)


def cmd_configs(_args: argparse.Namespace) -> int:
    rows = []
    for name, config in ALL_CONFIGS().items():
        costs = config.costs
        rows.append([name, config.initial_emulation,
                     config.hot_threshold if config.is_vm else "-",
                     costs.bbt_cycles_per_instr or "-",
                     config.hotspot_detector])
    print(format_table(
        ["configuration", "cold code", "hot threshold",
         "BBT cyc/instr", "hot detection"], rows,
        title="machine configurations (Table 2)"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Co-designed VM startup-time study "
                    "(Hu & Smith, ISCA 2006)")
    parser.add_argument("--log-level", default=None, choices=LOG_LEVELS,
                        help="logging threshold for the repro.* loggers "
                             "(default: warning)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an x86lite program")
    run.add_argument("program", help="assembly source file")
    run.add_argument("--config", default="soft")
    run.add_argument("--hot-threshold", type=int, default=None)
    run.add_argument("--max-instructions", type=int, default=10_000_000)
    run.set_defaults(func=cmd_run)

    startup = sub.add_parser("startup",
                             help="startup curves for one application")
    startup.add_argument("--app", default="Word")
    startup.add_argument("--instrs", type=int, default=500_000_000)
    startup.add_argument("--seed", type=int, default=0)
    startup.set_defaults(func=cmd_startup)

    breakeven = sub.add_parser("breakeven",
                               help="Fig. 9 per-app breakeven table")
    breakeven.add_argument("--instrs", type=int, default=500_000_000)
    breakeven.add_argument("--seed", type=int, default=0)
    breakeven.set_defaults(func=cmd_breakeven)

    profile = sub.add_parser(
        "profile",
        help="Fig. 3 frequency profile, or per-workload cycle "
             "attribution")
    profile.add_argument("workload", nargs="?", default=None,
                         help="seed workload name or assembly file; "
                              "when given, run it traced and print the "
                              "ledger's Eq. 1 phase breakdown instead "
                              "of the Fig. 3 table")
    profile.add_argument("--top", type=int, default=10,
                         help="top-N blocks by BBT translation overhead "
                              "(default 10)")
    profile.add_argument("--config", default="soft")
    profile.add_argument("--hot-threshold", type=int, default=None)
    profile.add_argument("--max-instructions", type=int,
                         default=10_000_000)
    profile.add_argument("--instrs", type=int, default=100_000_000)
    profile.add_argument("--seed", type=int, default=0)
    profile.set_defaults(func=cmd_profile)

    trace = sub.add_parser(
        "trace",
        help="run a workload traced; export Perfetto trace_event JSON")
    trace.add_argument("workload",
                       help="seed workload name or assembly file")
    trace.add_argument("--out", default=None,
                       help="write the trace JSON here "
                            "(default: stdout)")
    trace.add_argument("--config", default="soft")
    trace.add_argument("--hot-threshold", type=int, default=None)
    trace.add_argument("--max-instructions", type=int,
                       default=10_000_000)
    trace.set_defaults(func=cmd_trace)

    configs = sub.add_parser("configs", help="list configurations")
    configs.set_defaults(func=cmd_configs)

    verify = sub.add_parser(
        "verify",
        help="statically verify emitted translations for a workload")
    verify.add_argument("--workload", default="all",
                        help="seed program name, or 'all'")
    verify.add_argument("--program", default=None,
                        help="verify an assembly source file instead")
    verify.add_argument("--config", default="soft")
    verify.add_argument("--hot-threshold", type=int, default=20,
                        help="low threshold so SBT superblocks are "
                             "exercised too (default 20)")
    verify.add_argument("--max-instructions", type=int,
                        default=10_000_000)
    verify.add_argument("--json", action="store_true",
                        help="machine-readable violation report")
    verify.set_defaults(func=cmd_verify)

    serve = sub.add_parser(
        "serve",
        help="serve a translation repository to other VM instances")
    serve.add_argument("--socket", default=None,
                       help="listen on a Unix socket at this path")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default: ephemeral; ignored "
                            "with --socket)")
    serve.add_argument("--cache-dir", default=".repro-cache",
                       help="repository directory to serve "
                            "(default: .repro-cache)")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="exit after this many seconds "
                            "(smoke tests; default: run until "
                            "SIGTERM/SIGINT)")
    serve.add_argument("--max-conns", type=int, default=None,
                       help="reject connections beyond this many "
                            "concurrent clients with a retryable "
                            "'busy' error (default: unlimited)")
    serve.add_argument("--max-queue-depth", type=int, default=None,
                       help="shed store ops (retryable 'overloaded' "
                            "with a retry_after hint) once this many "
                            "requests are dispatching concurrently "
                            "(default: unlimited; docs/overload.md)")
    serve.add_argument("--shed-retry-after", type=float, default=0.05,
                       help="base client backoff hint (seconds) "
                            "attached to shed responses, scaled by "
                            "queue excess (default 0.05)")
    serve.add_argument("--shard-id", default="",
                       help="cluster shard group this server belongs "
                            "to (reported by the health op)")
    serve.add_argument("--role", default="primary",
                       choices=["primary", "replica"],
                       help="replica role within the shard group "
                            "(reported by the health op)")
    serve.add_argument("--drain-grace", type=float, default=5.0,
                       help="seconds to let in-flight requests finish "
                            "during shutdown before idle connections "
                            "are cut (default 5.0)")
    serve.set_defaults(func=cmd_serve)

    fleet = sub.add_parser(
        "fleet",
        help="mass-boot scenario harness: herds of VMs against one "
             "shared cache server")
    fleet.add_argument("action", choices=["run", "sweep", "report"],
                       help="run: boot one fleet scenario; sweep: "
                            "expand a parameter grid and boot every "
                            "scenario; report: validate and print a "
                            "saved fleet report JSON")
    fleet.add_argument("input", nargs="?", default=None,
                       help="report: the fleet report JSON file")
    fleet.add_argument("--n", default=None,
                       help="fleet size (run: one int, default 8; "
                            "sweep: comma list, default 8,64)")
    fleet.add_argument("--boot-policy", default=None,
                       help="all_at_once | one_then_others (sweep: "
                            "comma list; default both)")
    fleet.add_argument("--image-policy", default=None,
                       help="one | one_per_vm (sweep: comma list; "
                            "default both)")
    fleet.add_argument("--config", default="soft")
    fleet.add_argument("--workload", default="fibonacci",
                       help="seed workload every instance boots")
    fleet.add_argument("--warm", action="store_true",
                       help="pre-populate the server repository "
                            "before the herd boots")
    fleet.add_argument("--faults", default=None,
                       help="comma list of fault classes to arm "
                            "(serializes the pool for determinism)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--shards", type=int, default=1,
                       help="cluster shard groups to host (default 1: "
                            "the classic single cache server)")
    fleet.add_argument("--replicas", type=int, default=1,
                       help="replicas per shard group (default 1)")
    fleet.add_argument("--collect", action="store_true",
                       help="attach the telemetry collector to the "
                            "hosted server(s): embed SLO verdicts in "
                            "the report and server span lanes + flow "
                            "arrows in the merged trace")
    fleet.add_argument("--request-budget", type=float, default=8.0,
                       help="per-request deadline budget (seconds) "
                            "each instance's client spends across "
                            "retries and failovers (docs/overload.md)")
    fleet.add_argument("--max-queue-depth", type=int, default=None,
                       help="server-side admission bound: shed store "
                            "ops past this many concurrent dispatches "
                            "(default: unlimited)")
    fleet.add_argument("--workers", type=int, default=8,
                       help="worker-pool width (default 8)")
    fleet.add_argument("--pool", choices=["thread", "process"],
                       default="thread")
    fleet.add_argument("--hot-threshold", type=int, default=20)
    fleet.add_argument("--max-instructions", type=int,
                       default=2_000_000)
    fleet.add_argument("--out", default=None,
                       help="write the report JSON here (sweep "
                            "default: results/fleet_boot.json)")
    fleet.add_argument("--trace-out", default=None,
                       help="write the first fleet's merged Perfetto "
                            "trace here")
    fleet.set_defaults(func=cmd_fleet)

    cluster = sub.add_parser(
        "cluster",
        help="sharded translation-cache cluster: health and "
             "anti-entropy repair")
    cluster.add_argument("action", choices=["health", "repair"],
                         help="health: per-replica liveness/breaker/"
                              "lease view via the wire health op; "
                              "repair: one anti-entropy pass (diff "
                              "replica manifests, re-replicate the "
                              "gaps)")
    cluster.add_argument("--cluster", required=True,
                         help="cluster spec: 'shard0=h:p,h:p;"
                              "shard1=...' or @spec.json")
    cluster.add_argument("--timeout", type=float, default=2.0,
                         help="per-request timeout in seconds "
                              "(default 2.0)")
    cluster.add_argument("--retries", type=int, default=1,
                         help="retry budget per request (default 1)")
    cluster.set_defaults(func=cmd_cluster)

    monitor = sub.add_parser(
        "monitor",
        help="central telemetry collector: scrape replicas, merge "
             "metrics, evaluate SLO verdicts")
    monitor.add_argument("--cluster", required=True,
                         help="cluster spec: 'shard0=h:p,h:p;"
                              "shard1=...' or @spec.json (a single "
                              "server is 'shard0=host:port')")
    group = monitor.add_mutually_exclusive_group()
    group.add_argument("--once", action="store_true",
                       help="one scrape + report (the default)")
    group.add_argument("--watch", action="store_true",
                       help="scrape repeatedly every --interval "
                            "seconds")
    monitor.add_argument("--interval", type=float, default=2.0,
                         help="seconds between --watch scrapes "
                              "(default 2.0)")
    monitor.add_argument("--iterations", type=int, default=0,
                         help="stop --watch after this many scrapes "
                              "(default 0: until interrupted)")
    monitor.add_argument("--slo", default=None,
                         help="JSON file of SLO rule objects "
                              "(@file.json or plain path; default: "
                              "the built-in rules)")
    monitor.add_argument("--timeout", type=float, default=2.0,
                         help="per-scrape request timeout in seconds "
                              "(default 2.0)")
    monitor.add_argument("--retries", type=int, default=1,
                         help="retry budget per scrape request "
                              "(default 1)")
    monitor.add_argument("--json", action="store_true",
                         help="print the full operator snapshot as "
                              "JSON instead of the table")
    monitor.add_argument("--out", default=None,
                         help="also write the last snapshot JSON here")
    monitor.set_defaults(func=cmd_monitor)

    bench = sub.add_parser(
        "bench",
        help="bench trajectory: inspect results/bench_history.jsonl "
             "and gate on regressions")
    bench.add_argument("action", choices=["diff", "show"],
                       help="diff: compare each bench's newest row to "
                            "its baseline, exit 1 on regressions; "
                            "show: print recent history rows")
    bench.add_argument("--history",
                       default="results/bench_history.jsonl",
                       help="history file (default: "
                            "results/bench_history.jsonl)")
    bench.add_argument("--against", default="last",
                       choices=["last", "first"],
                       help="baseline: previous same-fingerprint row "
                            "(last, default) or the oldest one (first)")
    bench.add_argument("--tolerance", type=float, default=5.0,
                       help="allowed relative change in percent "
                            "(default 5)")
    bench.add_argument("--limit", type=int, default=20,
                       help="show: print at most this many trailing "
                            "rows (default 20)")
    bench.add_argument("--json", action="store_true",
                       help="diff: machine-readable comparison")
    bench.set_defaults(func=cmd_bench)

    cache = sub.add_parser(
        "cache",
        help="persistent translation repository "
             "(save/load/push/pull/stats/gc)")
    cache.add_argument("action",
                       choices=["save", "load", "push", "pull",
                                "stats", "gc", "fsck"],
                       help="save: cold run + snapshot translations; "
                            "load: warm-start from the repository and "
                            "run; push/pull: the same through a shared "
                            "cache server (--server), degrading to the "
                            "local repository on any failure; stats: "
                            "repository summary; gc: evict "
                            "LRU records down to a size budget; fsck: "
                            "check (and with --repair, fix) the store")
    cache.add_argument("program", nargs="?", default=None,
                       help="seed workload name or assembly file "
                            "(required for save/load)")
    cache.add_argument("--cache-dir", default=".repro-cache",
                       help="repository directory "
                            "(default: .repro-cache)")
    cache.add_argument("--config", default="soft")
    cache.add_argument("--hot-threshold", type=int, default=None)
    cache.add_argument("--max-instructions", type=int,
                       default=10_000_000)
    cache.add_argument("--server", default=None,
                       help="shared cache server address for push/pull "
                            "(unix:<path> or host:port)")
    cache.add_argument("--timeout", type=float, default=2.0,
                       help="per-request server timeout in seconds "
                            "(default 2.0)")
    cache.add_argument("--retries", type=int, default=3,
                       help="retry budget per server request "
                            "(default 3)")
    cache.add_argument("--budget", type=int, default=64 * 1024 * 1024,
                       help="gc size budget in bytes (default 64 MiB)")
    cache.add_argument("--repair", action="store_true",
                       help="fsck: quarantine corrupt objects and "
                            "repair the index/manifests in place")
    cache.set_defaults(func=cmd_cache)

    lint = sub.add_parser(
        "lint",
        help="run reprolint, the project-invariant static analyzer")
    from repro.lint.cli import add_lint_arguments
    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    log.debug("command %r dispatched", args.command)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
