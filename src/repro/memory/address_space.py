"""Sparse paged address space with little-endian accessors.

Both ISAs in the system (the architected ``x86lite`` and the implementation
``fusible`` ISA) address the same kind of flat 32-bit byte-addressed memory.
Pages are materialized on first touch so that widely separated regions
(program text, stack, VMM code caches) do not cost proportional storage.
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1
ADDRESS_MASK = 0xFFFFFFFF


class MemoryError_(Exception):
    """Raised on invalid memory access (bad address or misuse)."""


class AddressSpace:
    """A sparse 32-bit little-endian byte-addressable memory.

    Pages (4 KiB) are allocated lazily.  Reads from never-written pages
    return zero bytes, matching the "zero-filled fresh page" model that the
    VMM relies on when carving out concealed code-cache regions.
    """

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    # -- page management -------------------------------------------------

    def _page_for_write(self, page_index: int) -> bytearray:
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_index] = page
        return page

    @property
    def resident_pages(self) -> int:
        """Number of pages materialized so far."""
        return len(self._pages)

    # -- byte-range access ------------------------------------------------

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` starting at ``addr`` (wrapping is an error)."""
        addr &= ADDRESS_MASK
        if addr + len(data) > ADDRESS_MASK + 1:
            raise MemoryError_(f"write past end of address space at {addr:#x}")
        offset = 0
        remaining = len(data)
        while remaining:
            page_index, in_page = divmod(addr + offset, PAGE_SIZE)
            chunk = min(remaining, PAGE_SIZE - in_page)
            page = self._page_for_write(page_index)
            page[in_page:in_page + chunk] = data[offset:offset + chunk]
            offset += chunk
            remaining -= chunk

    def read(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``addr``."""
        addr &= ADDRESS_MASK
        if size < 0:
            raise MemoryError_("negative read size")
        if addr + size > ADDRESS_MASK + 1:
            raise MemoryError_(f"read past end of address space at {addr:#x}")
        out = bytearray(size)
        offset = 0
        remaining = size
        while remaining:
            page_index, in_page = divmod(addr + offset, PAGE_SIZE)
            chunk = min(remaining, PAGE_SIZE - in_page)
            page = self._pages.get(page_index)
            if page is not None:
                out[offset:offset + chunk] = page[in_page:in_page + chunk]
            offset += chunk
            remaining -= chunk
        return bytes(out)

    # -- scalar accessors ---------------------------------------------------

    def read_u8(self, addr: int) -> int:
        page_index, in_page = divmod(addr & ADDRESS_MASK, PAGE_SIZE)
        page = self._pages.get(page_index)
        return page[in_page] if page is not None else 0

    def write_u8(self, addr: int, value: int) -> None:
        page_index, in_page = divmod(addr & ADDRESS_MASK, PAGE_SIZE)
        self._page_for_write(page_index)[in_page] = value & 0xFF

    def read_u16(self, addr: int) -> int:
        data = self.read(addr, 2)
        return data[0] | (data[1] << 8)

    def write_u16(self, addr: int, value: int) -> None:
        value &= 0xFFFF
        self.write(addr, bytes((value & 0xFF, value >> 8)))

    def read_u32(self, addr: int) -> int:
        data = self.read(addr, 4)
        return data[0] | (data[1] << 8) | (data[2] << 16) | (data[3] << 24)

    def write_u32(self, addr: int, value: int) -> None:
        value &= 0xFFFFFFFF
        self.write(addr, bytes((value & 0xFF,
                                (value >> 8) & 0xFF,
                                (value >> 16) & 0xFF,
                                (value >> 24) & 0xFF)))

    def read_i32(self, addr: int) -> int:
        value = self.read_u32(addr)
        return value - 0x100000000 if value & 0x80000000 else value

    # -- bulk helpers -------------------------------------------------------

    def fill(self, addr: int, size: int, byte: int = 0) -> None:
        """Fill a range with a constant byte (used to scrub code caches)."""
        self.write(addr, bytes([byte & 0xFF]) * size)

    def snapshot(self) -> "AddressSpace":
        """Deep copy, used by differential tests and precise-state replay."""
        clone = AddressSpace()
        clone._pages = {index: bytearray(page)
                        for index, page in self._pages.items()}
        return clone
