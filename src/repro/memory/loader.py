"""Minimal binary image format and loader.

A conventional system loads the architected-ISA binary from disk into main
memory before execution begins (scenario 1 of the paper's Section 3.1).  The
:class:`Image` here plays the role of that on-disk binary: named segments of
bytes plus an entry point.  The VM and the reference superscalar both start
from an image loaded into an :class:`~repro.memory.AddressSpace`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.memory.address_space import AddressSpace

log = logging.getLogger("repro.memory")

#: Default load address for program text, mirroring a conventional
#: user-space text base.
DEFAULT_TEXT_BASE = 0x0040_0000

#: Default top-of-stack for loaded programs.
DEFAULT_STACK_TOP = 0x00BF_FFF0


@dataclass(frozen=True)
class Segment:
    """One contiguous region of an image."""

    name: str
    addr: int
    data: bytes

    @property
    def end(self) -> int:
        return self.addr + len(self.data)


@dataclass
class Image:
    """An executable image: segments plus an entry point.

    ``labels`` carries assembler symbols (useful to tests and examples for
    locating functions inside the image).
    """

    entry: int
    segments: list[Segment] = field(default_factory=list)
    labels: dict = field(default_factory=dict)

    def add_segment(self, name: str, addr: int, data: bytes) -> None:
        for existing in self.segments:
            if addr < existing.end and existing.addr < addr + len(data):
                raise ValueError(
                    f"segment {name!r} at {addr:#x} overlaps {existing.name!r}")
        self.segments.append(Segment(name, addr, data))

    @property
    def text(self) -> Segment:
        """The first segment named ``text`` (the architected code)."""
        for segment in self.segments:
            if segment.name == "text":
                return segment
        raise ValueError("image has no text segment")

    def total_bytes(self) -> int:
        return sum(len(segment.data) for segment in self.segments)


def load_image(image: Image, memory: AddressSpace) -> int:
    """Copy every segment of ``image`` into ``memory``; return the entry PC."""
    for segment in image.segments:
        memory.write(segment.addr, segment.data)
    log.debug("loaded %d segment(s), %d byte(s), entry %#x",
              len(image.segments), image.total_bytes(), image.entry)
    return image.entry
