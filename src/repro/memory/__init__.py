"""Flat memory substrate shared by the architected and implementation ISAs.

The co-designed VM of the paper keeps three kinds of code in one physical
memory: the architected (x86) binary, the concealed VMM, and the code caches
holding translations.  :class:`~repro.memory.address_space.AddressSpace`
models that memory as a sparse, paged, little-endian byte store.
"""

from repro.memory.address_space import AddressSpace, MemoryError_
from repro.memory.loader import Image, Segment, load_image

__all__ = ["AddressSpace", "MemoryError_", "Image", "Segment", "load_image"]
