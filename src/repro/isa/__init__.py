"""Instruction-set architectures of the co-designed VM.

``repro.isa.x86lite`` is the *architected* ISA — the conventional, legacy
CISC instruction set that binaries are compiled to (a faithful structural
subset of IA-32).  ``repro.isa.fusible`` is the *implementation* ISA — the
16-bit/32-bit fusible micro-op set that the co-designed hardware executes
natively (after Hu & Smith, HPCA 2006).
"""
