"""Functional model of the native (implementation-ISA) machine.

Executes encoded micro-op streams out of memory — in the VM, that memory is
the concealed code cache.  Execution proceeds until a *VM exit event*:

* ``VMEXIT``  — translated code ran off its translation; the architected
  continuation address is in a register (exit stubs build it with
  LUI/ORI).  The VMM dispatch loop takes over.
* ``VMCALL`` — translated code reached a complex architected instruction
  (REP string op, DIV, INT, HLT) that the translators off-load to VMM
  software, exactly like the hardware assists' ``Flag_cmplx`` escape.
* ``HALT``   — the native machine stops (used by bare-metal demos).

The machine also implements the ``XLTX86`` instruction (Table 1): it
delegates to :mod:`repro.hwassist.xltx86` so the backend functional unit
and this executable model are the same hardware by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.isa.fusible.encoding import UopDecodeError, decode_uop
from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import UOp
from repro.isa.fusible.registers import FREG_BYTES, NFREGS, NREGS, R_ZERO
from repro.isa.x86lite.registers import cond_holds
from repro.memory.address_space import AddressSpace

MASK32 = 0xFFFFFFFF
SIGN32 = 0x80000000


class NativeMachineError(Exception):
    """Raised on malformed native code or exhausted step budgets."""


@dataclass
class ExitEvent:
    """Why the native machine stopped executing translated code."""

    kind: str                 # 'vmexit' | 'vmcall' | 'halt'
    value: int = 0            # x86 target (vmexit) or service id (vmcall)
    native_pc: int = 0        # address of the exiting micro-op
    resume_pc: int = 0        # address of the following micro-op


def _sext32(value: int) -> int:
    value &= MASK32
    return value - 0x100000000 if value & SIGN32 else value


class FusibleMachine:
    """Executes fusible-ISA micro-op code from an address space."""

    def __init__(self, memory: AddressSpace) -> None:
        self.memory = memory
        self.regs: List[int] = [0] * NREGS
        self.fregs: List[bytearray] = [bytearray(FREG_BYTES)
                                       for _ in range(NFREGS)]
        self.cf = self.zf = self.sf = self.of = False
        self.pc = 0
        # CSR fields written by XLTX86 (widened to 5-bit byte counts; see
        # repro.hwassist.xltx86 for the documented deviation from Fig. 6b).
        self.csr_ilen = 0
        self.csr_uop_bytes = 0
        self.csr_cmplx = False
        self.csr_cti = False
        # statistics
        self.uops_executed = 0
        self.fused_pairs_seen = 0
        self.uop_bytes_fetched = 0

    # -- register helpers -----------------------------------------------------

    def get_reg(self, index: int) -> int:
        return 0 if index == R_ZERO else self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        if index != R_ZERO:
            self.regs[index] = value & MASK32

    @property
    def csr(self) -> int:
        """Packed CSR (Fig. 6b, with 5-bit byte-count fields)."""
        return (self.csr_ilen | (self.csr_uop_bytes << 5)
                | (int(self.csr_cmplx) << 10) | (int(self.csr_cti) << 11))

    def flags_packed(self) -> int:
        return (int(self.cf) | (int(self.zf) << 1) | (int(self.sf) << 2)
                | (int(self.of) << 3))

    def set_flags_packed(self, value: int) -> None:
        self.cf = bool(value & 1)
        self.zf = bool(value & 2)
        self.sf = bool(value & 4)
        self.of = bool(value & 8)

    # -- flag computation (32-bit x86-style) ---------------------------------

    def _flags_add(self, a: int, b: int, carry: int) -> int:
        raw = (a & MASK32) + (b & MASK32) + carry
        result = raw & MASK32
        self.cf = raw > MASK32
        self.zf = result == 0
        self.sf = bool(result & SIGN32)
        self.of = bool((~(a ^ b) & (a ^ result)) & SIGN32)
        return result

    def _flags_sub(self, a: int, b: int, borrow: int) -> int:
        raw = (a & MASK32) - (b & MASK32) - borrow
        result = raw & MASK32
        self.cf = raw < 0
        self.zf = result == 0
        self.sf = bool(result & SIGN32)
        self.of = bool(((a ^ b) & (a ^ result)) & SIGN32)
        return result

    def _flags_logic(self, result: int) -> int:
        result &= MASK32
        self.cf = self.of = False
        self.zf = result == 0
        self.sf = bool(result & SIGN32)
        return result

    # -- ALU bodies -----------------------------------------------------------

    def _alu(self, op: UOp, a: int, b: int, setflags: bool) -> int:
        """Shared ALU for register and immediate forms."""
        if op in (UOp.ADD, UOp.ADDI, UOp.ADD2, UOp.ADDI2):
            return (self._flags_add(a, b, 0) if setflags
                    else (a + b) & MASK32)
        if op is UOp.ADC:
            carry = int(self.cf)
            return (self._flags_add(a, b, carry) if setflags
                    else (a + b + carry) & MASK32)
        if op in (UOp.SUB, UOp.SUBI, UOp.SUB2):
            return (self._flags_sub(a, b, 0) if setflags
                    else (a - b) & MASK32)
        if op is UOp.SBB:
            borrow = int(self.cf)
            return (self._flags_sub(a, b, borrow) if setflags
                    else (a - b - borrow) & MASK32)
        if op in (UOp.AND, UOp.ANDI, UOp.AND2):
            result = a & b
        elif op in (UOp.OR, UOp.ORI, UOp.OR2):
            result = a | b
        elif op in (UOp.XOR, UOp.XORI, UOp.XOR2):
            result = a ^ b
        elif op in (UOp.SHL, UOp.SHLI, UOp.SHR, UOp.SHRI, UOp.SAR,
                    UOp.SARI):
            return self._shift(op, a, b & 31, setflags)
        else:  # pragma: no cover - dispatch is exhaustive
            raise NativeMachineError(f"non-ALU op {op!r}")
        return self._flags_logic(result) if setflags else result & MASK32

    def _shift(self, op: UOp, a: int, count: int, setflags: bool) -> int:
        a &= MASK32
        if count == 0:
            return a
        if op in (UOp.SHL, UOp.SHLI):
            result = (a << count) & MASK32
            cf = bool((a >> (32 - count)) & 1)
            of = (bool(result & SIGN32) != cf) if count == 1 else self.of
        elif op in (UOp.SHR, UOp.SHRI):
            result = a >> count
            cf = bool((a >> (count - 1)) & 1)
            of = bool(a & SIGN32) if count == 1 else self.of
        else:
            signed_a = _sext32(a)
            result = (signed_a >> count) & MASK32
            cf = bool((signed_a >> (count - 1)) & 1)
            of = False if count == 1 else self.of
        if setflags:
            self.cf, self.of = cf, of
            self.zf = result == 0
            self.sf = bool(result & SIGN32)
        return result

    # -- memory helpers ----------------------------------------------------------

    def _ea(self, uop: MicroOp) -> int:
        return (self.get_reg(uop.rs1) + uop.imm) & MASK32

    # -- execution -----------------------------------------------------------

    def step(self) -> Optional[ExitEvent]:
        """Execute one micro-op from memory; returns ExitEvent on VM exit."""
        window = self.memory.read(self.pc, 4)
        try:
            uop = decode_uop(window)
        except UopDecodeError as exc:
            raise NativeMachineError(f"bad native code at {self.pc:#x}: "
                                     f"{exc}") from exc
        native_pc = self.pc
        next_pc = native_pc + uop.length
        self.pc = next_pc
        return self._execute(uop, native_pc, next_pc)

    def execute_uops(self, uops) -> Optional[ExitEvent]:
        """Execute a straight-line micro-op list (no fetch, no branches).

        Used by the VMM for stub sequences and by differential tests.
        In-stream branches (BC/JMP/JR) are rejected — lists have no
        program counter to branch within.
        """
        for uop in uops:
            if uop.op in (UOp.BC, UOp.JMP, UOp.JR):
                raise NativeMachineError(
                    f"branch {uop.op.value} in straight-line list")
            event = self._execute(uop, native_pc=0, next_pc=0)
            if event is not None:
                return event
        return None

    def _execute(self, uop: MicroOp, native_pc: int,
                 next_pc: int) -> Optional[ExitEvent]:
        self.uops_executed += 1
        self.uop_bytes_fetched += uop.length
        if uop.fused:
            self.fused_pairs_seen += 1

        op = uop.op
        if op in (UOp.NOP, UOp.NOP2):
            return None
        if op is UOp.MOV2:
            self.set_reg(uop.rd, self.get_reg(uop.rs1))
            return None
        if op in (UOp.ADD2, UOp.SUB2, UOp.AND2, UOp.OR2, UOp.XOR2):
            result = self._alu(op, self.get_reg(uop.rd),
                               self.get_reg(uop.rs1), uop.setflags)
            self.set_reg(uop.rd, result)
            return None
        if op is UOp.ADDI2:
            result = self._alu(op, self.get_reg(uop.rd), uop.imm,
                               uop.setflags)
            self.set_reg(uop.rd, result)
            return None
        if op is UOp.CMP2:
            self._flags_sub(self.get_reg(uop.rd), self.get_reg(uop.rs1), 0)
            return None
        if op is UOp.TEST2:
            self._flags_logic(self.get_reg(uop.rd) & self.get_reg(uop.rs1))
            return None

        if op in (UOp.ADD, UOp.ADC, UOp.SUB, UOp.SBB, UOp.AND, UOp.OR,
                  UOp.XOR, UOp.SHL, UOp.SHR, UOp.SAR):
            result = self._alu(op, self.get_reg(uop.rs1),
                               self.get_reg(uop.rs2), uop.setflags)
            self.set_reg(uop.rd, result)
            return None
        if op in (UOp.ADDI, UOp.SUBI, UOp.ANDI, UOp.ORI, UOp.XORI,
                  UOp.SHLI, UOp.SHRI, UOp.SARI):
            result = self._alu(op, self.get_reg(uop.rs1), uop.imm,
                               uop.setflags)
            self.set_reg(uop.rd, result)
            return None
        if op in (UOp.MULL, UOp.MULLU):
            if op is UOp.MULL:
                product = _sext32(self.get_reg(uop.rs1)) * \
                    _sext32(self.get_reg(uop.rs2))
            else:
                product = self.get_reg(uop.rs1) * self.get_reg(uop.rs2)
            low = product & MASK32
            if uop.setflags:
                overflow = (product != _sext32(low) if op is UOp.MULL
                            else product >> 32 != 0)
                self.cf = self.of = overflow
                self.zf = low == 0
                self.sf = bool(low & SIGN32)
            self.set_reg(uop.rd, low)
            return None
        if op in (UOp.MULH, UOp.MULHU):
            if op is UOp.MULH:
                product = _sext32(self.get_reg(uop.rs1)) * \
                    _sext32(self.get_reg(uop.rs2))
            else:
                product = self.get_reg(uop.rs1) * self.get_reg(uop.rs2)
            self.set_reg(uop.rd, (product >> 32) & MASK32)
            return None
        if op is UOp.SEL:
            if cond_holds(uop.cond, self.cf, self.zf, self.sf, self.of):
                self.set_reg(uop.rd, self.get_reg(uop.rs1))
            return None
        if op is UOp.LUI:
            self.set_reg(uop.rd, (uop.imm << 13) & MASK32)
            return None
        if op in (UOp.INCF, UOp.DECF):
            value = self.get_reg(uop.rs1)
            if uop.setflags:
                saved_cf = self.cf
                result = (self._flags_add(value, 1, 0) if op is UOp.INCF
                          else self._flags_sub(value, 1, 0))
                self.cf = saved_cf
            else:
                delta = 1 if op is UOp.INCF else -1
                result = (value + delta) & MASK32
            self.set_reg(uop.rd, result)
            return None

        # -- memory -----------------------------------------------------------
        if op is UOp.LDW:
            self.set_reg(uop.rd, self.memory.read_u32(self._ea(uop)))
            return None
        if op is UOp.LDHU:
            self.set_reg(uop.rd, self.memory.read_u16(self._ea(uop)))
            return None
        if op is UOp.LDHS:
            value = self.memory.read_u16(self._ea(uop))
            self.set_reg(uop.rd, value - 0x10000 if value & 0x8000
                         else value)
            return None
        if op is UOp.LDBU:
            self.set_reg(uop.rd, self.memory.read_u8(self._ea(uop)))
            return None
        if op is UOp.LDBS:
            value = self.memory.read_u8(self._ea(uop))
            self.set_reg(uop.rd, value - 0x100 if value & 0x80 else value)
            return None
        if op is UOp.STW:
            self.memory.write_u32(self._ea(uop), self.get_reg(uop.rd))
            return None
        if op is UOp.STH:
            self.memory.write_u16(self._ea(uop), self.get_reg(uop.rd))
            return None
        if op is UOp.STB:
            self.memory.write_u8(self._ea(uop), self.get_reg(uop.rd))
            return None
        if op is UOp.LDF:
            self.fregs[uop.rd][:] = self.memory.read(self._ea(uop),
                                                     FREG_BYTES)
            return None
        if op is UOp.STF:
            self.memory.write(self._ea(uop), bytes(self.fregs[uop.rd]))
            return None

        # -- control ------------------------------------------------------------
        if op is UOp.BC:
            if cond_holds(uop.cond, self.cf, self.zf, self.sf, self.of):
                self.pc = (next_pc + uop.imm) & MASK32
            return None
        if op is UOp.JMP:
            self.pc = (next_pc + uop.imm) & MASK32
            return None
        if op is UOp.JR:
            self.pc = self.get_reg(uop.rs1)
            return None
        if op is UOp.VMEXIT:
            return ExitEvent("vmexit", value=self.get_reg(uop.rs1),
                             native_pc=native_pc, resume_pc=next_pc)
        if op is UOp.VMCALL:
            return ExitEvent("vmcall", value=uop.imm, native_pc=native_pc,
                             resume_pc=next_pc)
        if op is UOp.HALT:
            return ExitEvent("halt", native_pc=native_pc,
                             resume_pc=next_pc)

        # -- flags / special -----------------------------------------------------
        if op is UOp.RDFLG:
            self.set_reg(uop.rd, self.flags_packed())
            return None
        if op is UOp.WRFLG:
            self.set_flags_packed(self.get_reg(uop.rs1))
            return None
        if op is UOp.LDCSR:
            self.set_reg(uop.rd, self.csr)
            return None
        if op in (UOp.JCSRC, UOp.JCSRT):
            flag = self.csr_cmplx if op is UOp.JCSRC else self.csr_cti
            if flag:
                self.pc = (next_pc + uop.imm) & MASK32
            return None
        if op is UOp.XLTX86:
            # Delegate to the backend functional-unit model (Table 1).
            from repro.hwassist.xltx86 import XLTx86Unit
            result = XLTx86Unit().translate(bytes(self.fregs[uop.rs1]))
            self.fregs[uop.rd][:] = result.uop_bytes_padded
            self.csr_ilen = result.x86_ilen
            self.csr_uop_bytes = result.uop_byte_count
            self.csr_cmplx = result.flag_cmplx
            self.csr_cti = result.flag_cti
            return None

        raise NativeMachineError(f"unimplemented micro-op {op!r}")

    def run(self, start_pc: int, max_uops: int = 10_000_000) -> ExitEvent:
        """Run from ``start_pc`` until the next VM exit event."""
        self.pc = start_pc
        for _ in range(max_uops):
            event = self.step()
            if event is not None:
                return event
        raise NativeMachineError(f"no VM exit within {max_uops} micro-ops")
