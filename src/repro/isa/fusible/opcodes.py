"""Micro-op vocabulary of the fusible implementation ISA.

Micro-ops come in two encoded lengths — 16-bit and 32-bit — mirroring the
"16b/32b micro-op format" of the baseline co-designed VM (Hu & Smith,
HPCA 2006).  Each micro-op carries a *fusible* head bit; a set bit marks
the micro-op as the head of a fused macro-op pair with its successor.
"""

from __future__ import annotations

import enum


class UOp(enum.Enum):
    """Micro-operations (semantic level)."""

    # -- 16-bit-encodable forms (registers R0..R15, short immediates) -----
    MOV2 = "mov2"          # rd <- rs
    ADD2 = "add2"          # rd <- rd + rs
    SUB2 = "sub2"          # rd <- rd - rs
    AND2 = "and2"
    OR2 = "or2"
    XOR2 = "xor2"
    CMP2 = "cmp2"          # flags(rd - rs)
    TEST2 = "test2"        # flags(rd & rs)
    ADDI2 = "addi2"        # rd <- rd + sext(imm4)
    NOP2 = "nop2"

    # -- 32-bit register forms ------------------------------------------------
    ADD = "add"            # rd <- rs1 + rs2
    ADC = "adc"
    SUB = "sub"
    SBB = "sbb"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    MULL = "mull"          # low 32 bits of product (.f: signed-ovf flags)
    MULLU = "mullu"        # low 32 bits of product (.f: unsigned-ovf flags)
    MULH = "mulh"          # high 32 bits of signed product
    MULHU = "mulhu"        # high 32 bits of unsigned product
    SEL = "sel"            # if cond(flags): rd <- rs1  (CMOV support)

    # -- 32-bit immediate forms ---------------------------------------------
    ADDI = "addi"          # rd <- rs1 + sext(imm13)
    SUBI = "subi"
    ANDI = "andi"
    ORI = "ori"            # rd <- rs1 | zext(imm13)
    XORI = "xori"
    SHLI = "shli"
    SHRI = "shri"
    SARI = "sari"
    LUI = "lui"            # rd <- imm19 << 13
    INCF = "incf"          # rd <- rs1 + 1; .f sets ZF/SF/OF, preserves CF
    DECF = "decf"          # rd <- rs1 - 1; .f sets ZF/SF/OF, preserves CF

    # -- memory ----------------------------------------------------------------
    LDW = "ldw"            # rd <- mem32[rs1 + sext(imm13)]
    LDHU = "ldhu"
    LDHS = "ldhs"
    LDBU = "ldbu"
    LDBS = "ldbs"
    STW = "stw"            # mem32[rs1 + sext(imm13)] <- rd
    STH = "sth"
    STB = "stb"
    LDF = "ldf"            # F[fd] <- mem128[rs1 + sext(imm13)]
    STF = "stf"            # mem128[rs1 + sext(imm13)] <- F[fd]

    # -- control transfer -------------------------------------------------------
    BC = "bc"              # branch on condition (x86 tttn code) imm13 offset
    JMP = "jmp"            # pc-relative imm24 (chains inside code cache)
    JR = "jr"              # indirect jump to regs[rs1]
    VMEXIT = "vmexit"      # leave translated code; x86 target in regs[rs1]
    VMCALL = "vmcall"      # call VMM service imm13 (complex instr, syscall)

    # -- flags / special ---------------------------------------------------------
    RDFLG = "rdflg"        # rd <- packed architected flags
    WRFLG = "wrflg"        # packed architected flags <- rs1
    XLTX86 = "xltx86"      # F[fd] <- crack(F[fs]); sets CSR (Table 1)
    LDCSR = "ldcsr"        # rd <- CSR
    JCSRC = "jcsrc"        # branch imm13 if CSR.Flag_cmplx  ("Jcpx")
    JCSRT = "jcsrt"        # branch imm13 if CSR.Flag_cti    ("Jcti")
    NOP = "nop"
    HALT = "halt"          # stop the native machine (VMM/demo use)


#: Micro-ops encoded in the 16-bit format.
SHORT_OPS = frozenset({
    UOp.MOV2, UOp.ADD2, UOp.SUB2, UOp.AND2, UOp.OR2, UOp.XOR2, UOp.CMP2,
    UOp.TEST2, UOp.ADDI2, UOp.NOP2,
})

#: Register-register 32-bit ALU forms.
R_FORM_OPS = frozenset({
    UOp.ADD, UOp.ADC, UOp.SUB, UOp.SBB, UOp.AND, UOp.OR, UOp.XOR,
    UOp.SHL, UOp.SHR, UOp.SAR, UOp.MULL, UOp.MULLU, UOp.MULH, UOp.MULHU,
    UOp.SEL,
})

#: Immediate 32-bit ALU forms.
I_FORM_OPS = frozenset({
    UOp.ADDI, UOp.SUBI, UOp.ANDI, UOp.ORI, UOp.XORI, UOp.SHLI, UOp.SHRI,
    UOp.SARI,
})

#: Two-register forms (rd, rs1 only).
RR_FORM_OPS = frozenset({UOp.INCF, UOp.DECF})

#: Loads (rd is written from memory).
LOAD_OPS = frozenset({UOp.LDW, UOp.LDHU, UOp.LDHS, UOp.LDBU, UOp.LDBS,
                      UOp.LDF})

#: Stores (rd is the data source).
STORE_OPS = frozenset({UOp.STW, UOp.STH, UOp.STB, UOp.STF})

MEMORY_OPS = LOAD_OPS | STORE_OPS

#: Control transfers (end of in-line execution).
BRANCH_OPS = frozenset({UOp.BC, UOp.JMP, UOp.JR, UOp.VMEXIT, UOp.VMCALL,
                        UOp.JCSRC, UOp.JCSRT, UOp.HALT})

#: Single-cycle ALU micro-ops eligible to *head* a fused macro-op pair.
FUSIBLE_HEAD_OPS = (frozenset({
    UOp.ADD, UOp.SUB, UOp.AND, UOp.OR, UOp.XOR, UOp.SHL, UOp.SHR, UOp.SAR,
    UOp.ADDI, UOp.SUBI, UOp.ANDI, UOp.ORI, UOp.XORI, UOp.SHLI, UOp.SHRI,
    UOp.SARI, UOp.LUI, UOp.INCF, UOp.DECF,
}) | frozenset({UOp.MOV2, UOp.ADD2, UOp.SUB2, UOp.AND2, UOp.OR2, UOp.XOR2,
                UOp.ADDI2}))

#: Micro-ops allowed as the *tail* of a fused pair (consume head's result).
FUSIBLE_TAIL_OPS = (FUSIBLE_HEAD_OPS
                    | frozenset({UOp.CMP2, UOp.TEST2, UOp.ADC, UOp.SBB})
                    | MEMORY_OPS - frozenset({UOp.LDF, UOp.STF})
                    | frozenset({UOp.BC}))

#: Long-latency micro-ops (multi-cycle in the timing model).
LONG_LATENCY_OPS = frozenset({UOp.MULL, UOp.MULH, UOp.MULHU, UOp.XLTX86,
                              UOp.LDF, UOp.STF})

#: Micro-ops that act as scheduling barriers in the SBT optimizer
#: (precise-state handoffs to the VMM must not be reordered across).
BARRIER_OPS = frozenset({UOp.VMCALL, UOp.VMEXIT, UOp.RDFLG, UOp.WRFLG,
                         UOp.XLTX86, UOp.LDCSR, UOp.JCSRC, UOp.JCSRT,
                         UOp.HALT})

#: Micro-ops that read the architected flags.
FLAG_READING_UOPS = frozenset({UOp.BC, UOp.SEL, UOp.ADC, UOp.SBB, UOp.RDFLG})


class VMService(enum.IntEnum):
    """VMCALL service indices (the VMM runtime's entry points)."""

    INTERP_ONE = 0     # interpret one complex architected instruction
    SYSCALL = 1        # architected INT 0x80 (subsumed by INTERP_ONE;
    #                    kept distinct for accounting)
    HALT = 2           # architected HLT
    PROFILE = 3        # software profiling counter bump (VM.soft BBT code)
