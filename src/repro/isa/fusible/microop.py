"""The MicroOp record and its structural properties.

A :class:`MicroOp` is the unit of the implementation ISA.  Encoded length
is 2 bytes (16-bit format, registers R0–R15 only) or 4 bytes (32-bit
format).  The ``fused`` bit marks the head of a macro-op pair; the machine
and the timing model treat the head plus its successor as one issue unit.

``x86_addr`` is *metadata*, not architecture: it records which architected
instruction a micro-op was cracked from.  The translators persist it in
side tables for precise-state reconstruction; it never reaches the encoded
bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.isa.fusible.opcodes import (
    BRANCH_OPS,
    I_FORM_OPS,
    LOAD_OPS,
    R_FORM_OPS,
    RR_FORM_OPS,
    SHORT_OPS,
    STORE_OPS,
    UOp,
)
from repro.isa.fusible.registers import R_ZERO, SHORT_FORM_REG_LIMIT, reg_name
from repro.isa.x86lite.registers import Cond

#: Ops whose flag effects exist regardless of the .f bit (compare/test
#: forms have no other effect).
_ALWAYS_FLAGS = frozenset({UOp.CMP2, UOp.TEST2})


@dataclass(frozen=True)
class MicroOp:
    """One implementation-ISA micro-op."""

    op: UOp
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    cond: Optional[Cond] = None
    fused: bool = False
    setflags: bool = False
    x86_addr: Optional[int] = None   # metadata (side table), never encoded

    # -- structure -----------------------------------------------------------

    @property
    def is_short(self) -> bool:
        return self.op in SHORT_OPS

    @property
    def length(self) -> int:
        """Encoded length in bytes."""
        return 2 if self.is_short else 4

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_load(self) -> bool:
        return self.op in LOAD_OPS

    @property
    def is_store(self) -> bool:
        return self.op in STORE_OPS

    @property
    def writes_flags(self) -> bool:
        return self.setflags or self.op in _ALWAYS_FLAGS

    def dest(self) -> Optional[int]:
        """The general register written, or None."""
        op = self.op
        if op in (UOp.MOV2, UOp.ADD2, UOp.SUB2, UOp.AND2, UOp.OR2,
                  UOp.XOR2, UOp.ADDI2):
            return self.rd
        if op in R_FORM_OPS or op in I_FORM_OPS or op in RR_FORM_OPS:
            return None if self.rd == R_ZERO else self.rd
        if op in (UOp.LUI, UOp.RDFLG, UOp.LDCSR):
            return None if self.rd == R_ZERO else self.rd
        if op in LOAD_OPS and op is not UOp.LDF:
            return None if self.rd == R_ZERO else self.rd
        return None

    def sources(self) -> List[int]:
        """General registers read (R31/zero excluded)."""
        op = self.op
        regs: List[int] = []
        if op in (UOp.ADD2, UOp.SUB2, UOp.AND2, UOp.OR2, UOp.XOR2,
                  UOp.CMP2, UOp.TEST2):
            regs = [self.rd, self.rs1]
        elif op in (UOp.MOV2,):
            regs = [self.rs1]
        elif op in (UOp.ADDI2,):
            regs = [self.rd]
        elif op in R_FORM_OPS:
            regs = [self.rs1, self.rs2]
            if op is UOp.SEL:
                regs = [self.rs1, self.rd]  # keeps old rd if cond fails
        elif op in I_FORM_OPS or op in RR_FORM_OPS:
            regs = [self.rs1]
        elif op in LOAD_OPS:
            regs = [self.rs1]
        elif op in STORE_OPS:
            regs = [self.rs1] if op is UOp.STF else [self.rs1, self.rd]
        elif op in (UOp.JR, UOp.VMEXIT, UOp.WRFLG):
            regs = [self.rs1]
        return [reg for reg in regs if reg != R_ZERO]

    @property
    def uses_short_regs_only(self) -> bool:
        return all(reg < SHORT_FORM_REG_LIMIT
                   for reg in (self.rd, self.rs1, self.rs2))

    def with_fused(self, fused: bool = True) -> "MicroOp":
        return replace(self, fused=fused)

    # -- printing --------------------------------------------------------------

    def __str__(self) -> str:
        name = self.op.value + (".f" if self.setflags else "")
        head = "+" if self.fused else " "
        op = self.op
        if op in (UOp.NOP, UOp.NOP2, UOp.HALT):
            body = name
        elif op is UOp.BC:
            body = f"bc.{self.cond.name.lower()} {self.imm:+d}"
        elif op is UOp.SEL:
            body = (f"sel.{self.cond.name.lower()} {reg_name(self.rd)}, "
                    f"{reg_name(self.rs1)}")
        elif op is UOp.JMP:
            body = f"jmp {self.imm:+d}"
        elif op in (UOp.JR, UOp.VMEXIT, UOp.WRFLG):
            body = f"{name} {reg_name(self.rs1)}"
        elif op is UOp.VMCALL:
            body = f"vmcall #{self.imm}"
        elif op in (UOp.RDFLG, UOp.LDCSR):
            body = f"{name} {reg_name(self.rd)}"
        elif op in (UOp.JCSRC, UOp.JCSRT):
            body = f"{name} {self.imm:+d}"
        elif op is UOp.XLTX86:
            body = f"xltx86 f{self.rd}, f{self.rs1}"
        elif op in (UOp.LDF, UOp.STF):
            body = f"{name} f{self.rd}, {self.imm}({reg_name(self.rs1)})"
        elif op in LOAD_OPS or op in STORE_OPS:
            body = f"{name} {reg_name(self.rd)}, " \
                   f"{self.imm}({reg_name(self.rs1)})"
        elif op is UOp.LUI:
            body = f"lui {reg_name(self.rd)}, {self.imm:#x}"
        elif op in I_FORM_OPS:
            body = f"{name} {reg_name(self.rd)}, {reg_name(self.rs1)}, " \
                   f"{self.imm}"
        elif op in RR_FORM_OPS:
            body = f"{name} {reg_name(self.rd)}, {reg_name(self.rs1)}"
        elif op in R_FORM_OPS:
            body = f"{name} {reg_name(self.rd)}, {reg_name(self.rs1)}, " \
                   f"{reg_name(self.rs2)}"
        elif op is UOp.ADDI2:
            body = f"{name} {reg_name(self.rd)}, {self.imm}"
        elif op is UOp.MOV2:
            body = f"{name} {reg_name(self.rd)}, {reg_name(self.rs1)}"
        else:  # remaining 16-bit two-register forms
            body = f"{name} {reg_name(self.rd)}, {reg_name(self.rs1)}"
        return head + body
