"""Binary encoding of fusible micro-ops (16-bit / 32-bit formats).

Micro-op streams are sequences of 16-bit little-endian *parcels*.  The
first parcel of every micro-op carries the discriminator bits, so a decoder
walking the stream never needs lookahead:

16-bit format (one parcel)::

    bit 15   F (fused-pair head)
    bit 14   0 (16-bit)
    bits 13..9  opcode5
    bits 8..5   rd  (R0..R15)
    bits 4..1   rs / imm4
    bit 0    .f (set architected flags)

32-bit format (two parcels; the *high* half is emitted first)::

    bit 31   F
    bit 30   1 (32-bit)
    bits 29..24 opcode6
    bits 23..19 rd    (or cond for BC; top of imm24 for JMP/LUI)
    bits 18..14 rs1
    bit 13   .f
    bits 12..0  imm13 / rs2(bits 4..0) / cond(bits 8..5 for SEL)

JMP uses bits 23..0 as a signed 24-bit parcel-stream byte offset; LUI uses
bits 18..0 as its immediate.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import (
    I_FORM_OPS,
    LOAD_OPS,
    R_FORM_OPS,
    RR_FORM_OPS,
    STORE_OPS,
    UOp,
)
from repro.isa.x86lite.registers import Cond


class UopEncodeError(Exception):
    """Raised when a micro-op cannot be represented in its format."""


class UopDecodeError(Exception):
    """Raised on invalid micro-op bytes."""


_SHORT_NUMBERS = {
    UOp.NOP2: 0, UOp.MOV2: 1, UOp.ADD2: 2, UOp.SUB2: 3, UOp.AND2: 4,
    UOp.OR2: 5, UOp.XOR2: 6, UOp.CMP2: 7, UOp.TEST2: 8, UOp.ADDI2: 9,
}
_SHORT_BY_NUMBER = {number: op for op, number in _SHORT_NUMBERS.items()}

_LONG_NUMBERS = {
    UOp.NOP: 0, UOp.ADD: 1, UOp.ADC: 2, UOp.SUB: 3, UOp.SBB: 4,
    UOp.AND: 5, UOp.OR: 6, UOp.XOR: 7, UOp.SHL: 8, UOp.SHR: 9,
    UOp.SAR: 10, UOp.MULL: 11, UOp.MULLU: 12, UOp.MULH: 13, UOp.MULHU: 14,
    UOp.SEL: 15, UOp.ADDI: 16, UOp.SUBI: 17, UOp.ANDI: 18, UOp.ORI: 19,
    UOp.XORI: 20, UOp.SHLI: 21, UOp.SHRI: 22, UOp.SARI: 23, UOp.LUI: 24,
    UOp.INCF: 25, UOp.DECF: 26, UOp.LDW: 27, UOp.LDHU: 28, UOp.LDHS: 29,
    UOp.LDBU: 30, UOp.LDBS: 31, UOp.STW: 32, UOp.STH: 33, UOp.STB: 34,
    UOp.LDF: 35, UOp.STF: 36, UOp.BC: 37, UOp.JMP: 38, UOp.JR: 39,
    UOp.VMEXIT: 40, UOp.VMCALL: 41, UOp.RDFLG: 42, UOp.WRFLG: 43,
    UOp.XLTX86: 44, UOp.LDCSR: 45, UOp.JCSRC: 46, UOp.JCSRT: 47,
    UOp.HALT: 48,
}
_LONG_BY_NUMBER = {number: op for op, number in _LONG_NUMBERS.items()}

_IMM13_MIN, _IMM13_MAX = -(1 << 12), (1 << 12) - 1
_IMM24_MIN, _IMM24_MAX = -(1 << 23), (1 << 23) - 1

#: Immediate forms that zero-extend their 13-bit field.
_UNSIGNED_IMM_OPS = frozenset({UOp.ANDI, UOp.ORI, UOp.XORI, UOp.SHLI,
                               UOp.SHRI, UOp.SARI, UOp.VMCALL})


def imm13_in_range(op: UOp, imm: int) -> bool:
    """Whether ``imm`` fits the 13-bit field of ``op``."""
    if op in _UNSIGNED_IMM_OPS:
        return 0 <= imm <= 0x1FFF
    return _IMM13_MIN <= imm <= _IMM13_MAX


def _check_reg(value: int, limit: int, what: str) -> int:
    if not 0 <= value < limit:
        raise UopEncodeError(f"{what} {value} out of range (<{limit})")
    return value


def encode_uop(uop: MicroOp) -> bytes:
    """Encode one micro-op to its 2- or 4-byte form."""
    if uop.is_short:
        word = (int(uop.fused) << 15) | (_SHORT_NUMBERS[uop.op] << 9)
        word |= _check_reg(uop.rd, 16, "short rd") << 5
        if uop.op is UOp.ADDI2:
            if not -8 <= uop.imm <= 7:
                raise UopEncodeError(f"imm4 {uop.imm} out of range")
            word |= (uop.imm & 0xF) << 1
        else:
            word |= _check_reg(uop.rs1, 16, "short rs") << 1
        word |= int(uop.setflags)
        return word.to_bytes(2, "little")

    op = uop.op
    number = _LONG_NUMBERS.get(op)
    if number is None:
        raise UopEncodeError(f"unencodable micro-op {op!r}")
    word = (int(uop.fused) << 31) | (1 << 30) | (number << 24)

    if op is UOp.JMP:
        if not _IMM24_MIN <= uop.imm <= _IMM24_MAX:
            raise UopEncodeError(f"imm24 {uop.imm} out of range")
        word |= uop.imm & 0xFFFFFF
    elif op is UOp.LUI:
        if not 0 <= uop.imm < (1 << 19):
            raise UopEncodeError(f"imm19 {uop.imm:#x} out of range")
        word |= _check_reg(uop.rd, 32, "rd") << 19
        word |= uop.imm
    elif op is UOp.BC:
        if uop.cond is None:
            raise UopEncodeError("BC requires a condition")
        if not imm13_in_range(op, uop.imm):
            raise UopEncodeError(f"imm13 {uop.imm} out of range")
        word |= int(uop.cond) << 19
        word |= uop.imm & 0x1FFF
    elif op is UOp.SEL:
        if uop.cond is None:
            raise UopEncodeError("SEL requires a condition")
        word |= _check_reg(uop.rd, 32, "rd") << 19
        word |= _check_reg(uop.rs1, 32, "rs1") << 14
        word |= int(uop.cond) << 5
        word |= int(uop.setflags) << 13
    elif op in R_FORM_OPS:
        word |= _check_reg(uop.rd, 32, "rd") << 19
        word |= _check_reg(uop.rs1, 32, "rs1") << 14
        word |= int(uop.setflags) << 13
        word |= _check_reg(uop.rs2, 32, "rs2")
    elif op in RR_FORM_OPS or op in (UOp.WRFLG, UOp.JR, UOp.VMEXIT):
        word |= _check_reg(uop.rd, 32, "rd") << 19
        word |= _check_reg(uop.rs1, 32, "rs1") << 14
        word |= int(uop.setflags) << 13
    elif op in (UOp.RDFLG, UOp.LDCSR):
        word |= _check_reg(uop.rd, 32, "rd") << 19
    elif op is UOp.XLTX86:
        word |= _check_reg(uop.rd, 32, "fd") << 19
        word |= _check_reg(uop.rs1, 32, "fs") << 14
    elif op in I_FORM_OPS or op in LOAD_OPS or op in STORE_OPS \
            or op in (UOp.VMCALL, UOp.JCSRC, UOp.JCSRT):
        if not imm13_in_range(op, uop.imm):
            raise UopEncodeError(f"imm13 {uop.imm} out of range for "
                                 f"{op.value}")
        word |= _check_reg(uop.rd, 32, "rd") << 19
        word |= _check_reg(uop.rs1, 32, "rs1") << 14
        word |= int(uop.setflags) << 13
        word |= uop.imm & 0x1FFF
    elif op in (UOp.NOP, UOp.HALT):
        pass
    else:  # pragma: no cover - table is exhaustive
        raise UopEncodeError(f"unhandled micro-op {op!r}")

    # high parcel first so the discriminator bits lead the stream
    return bytes(((word >> 16) & 0xFFFF).to_bytes(2, "little")
                 + (word & 0xFFFF).to_bytes(2, "little"))


def decode_uop(data: bytes, offset: int = 0) -> MicroOp:
    """Decode one micro-op from ``data`` at ``offset``."""
    if offset + 2 > len(data):
        raise UopDecodeError("truncated micro-op stream")
    first = int.from_bytes(data[offset:offset + 2], "little")
    fused = bool(first & 0x8000)

    if not first & 0x4000:  # 16-bit format
        number = (first >> 9) & 0x1F
        op = _SHORT_BY_NUMBER.get(number)
        if op is None:
            raise UopDecodeError(f"invalid short opcode {number}")
        rd = (first >> 5) & 0xF
        field = (first >> 1) & 0xF
        setflags = bool(first & 1)
        if op is UOp.ADDI2:
            imm = field - 16 if field & 0x8 else field
            return MicroOp(op, rd=rd, imm=imm, fused=fused,
                           setflags=setflags)
        return MicroOp(op, rd=rd, rs1=field, fused=fused, setflags=setflags)

    if offset + 4 > len(data):
        raise UopDecodeError("truncated 32-bit micro-op")
    second = int.from_bytes(data[offset + 2:offset + 4], "little")
    word = (first << 16) | second
    number = (word >> 24) & 0x3F
    op = _LONG_BY_NUMBER.get(number)
    if op is None:
        raise UopDecodeError(f"invalid long opcode {number}")

    rd = (word >> 19) & 0x1F
    rs1 = (word >> 14) & 0x1F
    setflags = bool((word >> 13) & 1)
    imm13 = word & 0x1FFF

    def sext13(value: int) -> int:
        return value - 0x2000 if value & 0x1000 else value

    if op is UOp.JMP:
        imm24 = word & 0xFFFFFF
        imm = imm24 - 0x1000000 if imm24 & 0x800000 else imm24
        return MicroOp(op, imm=imm, fused=fused)
    if op is UOp.LUI:
        return MicroOp(op, rd=rd, imm=word & 0x7FFFF, fused=fused)
    if op is UOp.BC:
        return MicroOp(op, cond=Cond(rd), imm=sext13(imm13), fused=fused)
    if op is UOp.SEL:
        return MicroOp(op, rd=rd, rs1=rs1, cond=Cond((word >> 5) & 0xF),
                       fused=fused, setflags=setflags)
    if op in R_FORM_OPS:
        return MicroOp(op, rd=rd, rs1=rs1, rs2=word & 0x1F, fused=fused,
                       setflags=setflags)
    if op in RR_FORM_OPS or op in (UOp.WRFLG, UOp.JR, UOp.VMEXIT):
        return MicroOp(op, rd=rd, rs1=rs1, fused=fused, setflags=setflags)
    if op in (UOp.RDFLG, UOp.LDCSR):
        return MicroOp(op, rd=rd, fused=fused)
    if op is UOp.XLTX86:
        return MicroOp(op, rd=rd, rs1=rs1, fused=fused)
    if op in (UOp.NOP, UOp.HALT):
        return MicroOp(op, fused=fused)
    # immediate forms
    imm = imm13 if op in _UNSIGNED_IMM_OPS else sext13(imm13)
    return MicroOp(op, rd=rd, rs1=rs1, imm=imm, fused=fused,
                   setflags=setflags)


def encode_stream(uops: List[MicroOp]) -> bytes:
    """Encode a micro-op sequence to bytes."""
    return b"".join(encode_uop(uop) for uop in uops)


def decode_stream(data: bytes) -> List[MicroOp]:
    """Decode an entire byte string as a micro-op sequence."""
    out: List[MicroOp] = []
    offset = 0
    while offset < len(data):
        uop = decode_uop(data, offset)
        out.append(uop)
        offset += uop.length
    return out


def stream_length(uops: List[MicroOp]) -> int:
    """Total encoded length in bytes."""
    return sum(uop.length for uop in uops)


def decode_uop_at(memory, addr: int) -> Tuple[MicroOp, int]:
    """Decode one micro-op from an AddressSpace; returns (uop, length)."""
    window = memory.read(addr, 4)
    uop = decode_uop(window)
    return uop, uop.length
