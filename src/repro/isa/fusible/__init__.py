"""The fusible implementation ISA (native ISA of the co-designed VM).

16-bit/32-bit micro-ops with a fusible head bit, 32 general registers
(R0–R7 shadow the architected GPRs), 32 x 128-bit F registers, and the
XLTx86 translation-assist instruction.  See ``DESIGN.md`` S4.
"""

from repro.isa.fusible.encoding import (
    UopDecodeError,
    UopEncodeError,
    decode_stream,
    decode_uop,
    encode_stream,
    encode_uop,
    imm13_in_range,
    stream_length,
)
from repro.isa.fusible.machine import (
    ExitEvent,
    FusibleMachine,
    NativeMachineError,
)
from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import (
    BARRIER_OPS,
    BRANCH_OPS,
    FUSIBLE_HEAD_OPS,
    FUSIBLE_TAIL_OPS,
    LOAD_OPS,
    LONG_LATENCY_OPS,
    MEMORY_OPS,
    SHORT_OPS,
    STORE_OPS,
    UOp,
    VMService,
)
from repro.isa.fusible.registers import (
    ARCH_REG_COUNT,
    FREG_BYTES,
    NFREGS,
    NREGS,
    R_CODE_PTR,
    R_EXIT_TARGET,
    R_SCRATCH0,
    R_SCRATCH1,
    R_SCRATCH2,
    R_SCRATCH3,
    R_X86_PC,
    R_ZERO,
    reg_name,
)

__all__ = [
    "ARCH_REG_COUNT", "BARRIER_OPS", "BRANCH_OPS", "ExitEvent", "FREG_BYTES",
    "FUSIBLE_HEAD_OPS", "FUSIBLE_TAIL_OPS", "FusibleMachine", "LOAD_OPS",
    "LONG_LATENCY_OPS", "MEMORY_OPS", "MicroOp", "NFREGS", "NREGS",
    "NativeMachineError", "R_CODE_PTR", "R_EXIT_TARGET", "R_SCRATCH0",
    "R_SCRATCH1", "R_SCRATCH2", "R_SCRATCH3", "R_X86_PC", "R_ZERO",
    "SHORT_OPS", "STORE_OPS", "UOp", "UopDecodeError", "UopEncodeError",
    "VMService", "decode_stream", "decode_uop", "encode_stream",
    "encode_uop", "imm13_in_range", "reg_name", "stream_length",
]
