"""Register conventions of the fusible implementation ISA.

The implementation ISA has 32 general registers and 32 x 128-bit F
registers (the FP/media file that the XLTx86 assist uses for instruction
bytes and micro-op output).  The register convention below is part of the
hardware/software co-design contract:

====  =======================================================
R0-R7   map the architected x86lite GPRs (EAX..EDI), in order
R8-R15  VMM temporaries addressable by 16-bit micro-ops
R16-R27 VMM temporaries (32-bit micro-ops only)
R28     VMM: translation-time scratch (Rcode$ in the HAloop)
R29     VMM: chaining / exit-target scratch
R30     VMM: architected-PC shadow (Rx86pc in the HAloop)
R31     hardwired zero
====  =======================================================
"""

from __future__ import annotations

#: Number of general registers in the implementation ISA.
NREGS = 32

#: Number of 128-bit F registers.
NFREGS = 32

#: Bytes per F register (holds a maximal x86lite instruction).
FREG_BYTES = 16

#: First implementation register mapping an architected GPR (R0 = EAX ...).
ARCH_REG_BASE = 0

#: Number of architected GPRs mapped into the implementation file.
ARCH_REG_COUNT = 8

#: Temporaries reachable from the 16-bit micro-op format (R0..R15).
SHORT_FORM_REG_LIMIT = 16

# VMM-reserved registers (see module docstring).
R_SCRATCH0 = 16
R_SCRATCH1 = 17
R_SCRATCH2 = 18
R_SCRATCH3 = 19
R_CODE_PTR = 28
R_EXIT_TARGET = 29
R_X86_PC = 30
R_ZERO = 31


def reg_name(index: int) -> str:
    """Symbolic name for a register index."""
    arch_names = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")
    if 0 <= index < ARCH_REG_COUNT:
        return f"r{index}/{arch_names[index]}"
    if index == R_ZERO:
        return "rzero"
    if index == R_X86_PC:
        return "rx86pc"
    if index == R_EXIT_TARGET:
        return "rexit"
    if index == R_CODE_PTR:
        return "rcode"
    return f"r{index}"
