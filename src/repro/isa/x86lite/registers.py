"""Architected registers and condition codes of the x86lite ISA.

x86lite keeps the IA-32 general-purpose register file (eight 32-bit GPRs
with the conventional encoding order) and the four arithmetic flags that the
instruction subset needs: CF, ZF, SF and OF.  PF and AF are intentionally
omitted — no instruction in the subset consumes them — and the omission is
documented here rather than silently approximated.
"""

from __future__ import annotations

import enum


class Reg(enum.IntEnum):
    """General-purpose registers, in IA-32 encoding order."""

    EAX = 0
    ECX = 1
    EDX = 2
    EBX = 3
    ESP = 4
    EBP = 5
    ESI = 6
    EDI = 7


#: Number of architected GPRs.
GPR_COUNT = 8

#: Lookup from lower-case assembly name to register.
REG_BY_NAME = {reg.name.lower(): reg for reg in Reg}

#: 16-bit register names (used with the operand-size prefix).
REG16_BY_NAME = {
    "ax": Reg.EAX, "cx": Reg.ECX, "dx": Reg.EDX, "bx": Reg.EBX,
    "sp": Reg.ESP, "bp": Reg.EBP, "si": Reg.ESI, "di": Reg.EDI,
}


class Flag(enum.IntEnum):
    """Arithmetic flags (bit positions mirror EFLAGS)."""

    CF = 0
    ZF = 6
    SF = 7
    OF = 11


class Cond(enum.IntEnum):
    """Condition codes (``tttn`` encodings shared by Jcc/CMOVcc)."""

    O = 0x0
    NO = 0x1
    B = 0x2      # below (CF)
    NB = 0x3     # not below
    E = 0x4      # equal (ZF)
    NE = 0x5
    BE = 0x6     # below or equal (CF or ZF)
    NBE = 0x7    # above
    S = 0x8      # sign
    NS = 0x9
    L = 0xC      # less (SF != OF)
    NL = 0xD     # greater or equal
    LE = 0xE     # less or equal
    NLE = 0xF    # greater


#: Assembly aliases for each condition code.
COND_BY_NAME = {
    "o": Cond.O, "no": Cond.NO,
    "b": Cond.B, "c": Cond.B, "nae": Cond.B,
    "nb": Cond.NB, "nc": Cond.NB, "ae": Cond.NB,
    "e": Cond.E, "z": Cond.E,
    "ne": Cond.NE, "nz": Cond.NE,
    "be": Cond.BE, "na": Cond.BE,
    "nbe": Cond.NBE, "a": Cond.NBE,
    "s": Cond.S, "ns": Cond.NS,
    "l": Cond.L, "nge": Cond.L,
    "nl": Cond.NL, "ge": Cond.NL,
    "le": Cond.LE, "ng": Cond.LE,
    "nle": Cond.NLE, "g": Cond.NLE,
}


def cond_holds(cond: Cond, cf: bool, zf: bool, sf: bool, of: bool) -> bool:
    """Evaluate a condition code against flag values."""
    base = cond & ~1
    if base == Cond.O:
        result = of
    elif base == Cond.B:
        result = cf
    elif base == Cond.E:
        result = zf
    elif base == Cond.BE:
        result = cf or zf
    elif base == Cond.S:
        result = sf
    elif base == Cond.L:
        result = sf != of
    elif base == Cond.LE:
        result = zf or (sf != of)
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unknown condition {cond!r}")
    return not result if cond & 1 else result
