"""Reference semantics for x86lite instructions.

``execute(instr, state)`` performs exactly one architected instruction.
These semantics are the single source of truth for correctness: the
interpreter calls them directly, and the translation paths (BBT/SBT micro-op
code) are differentially tested against them.

Flag notes (documented deviations from IA-32, applied consistently):

* PF and AF are not modeled (nothing in the subset reads them).
* IMUL/MUL define ZF/SF from the low result instead of leaving them
  undefined; this makes differential testing deterministic.
* Shifts with a zero (masked) count leave all flags unchanged, like IA-32.
"""

from __future__ import annotations

from typing import Tuple

from repro.isa.x86lite.instruction import (
    ImmOperand,
    Instruction,
    MemOperand,
    Operand,
    RegOperand,
)
from repro.isa.x86lite.opcodes import Op
from repro.isa.x86lite.registers import Reg, cond_holds
from repro.isa.x86lite.state import ArchException, MASK32, X86State

#: INT vector used for OS services in x86lite programs.
SYSCALL_VECTOR = 0x80

#: Syscall numbers (in EAX at INT 0x80).
SYS_EXIT = 0
SYS_PRINT_INT = 1
SYS_PRINT_CHAR = 2
SYS_PRINT_STR = 3


def _mask(width: int) -> int:
    return (1 << width) - 1


def _sign_bit(width: int) -> int:
    return 1 << (width - 1)


def _signed(value: int, width: int) -> int:
    mask = _mask(width)
    value &= mask
    return value - (mask + 1) if value & _sign_bit(width) else value


def effective_address(operand: MemOperand, state: X86State) -> int:
    """Compute the architected effective address of a memory operand."""
    addr = operand.disp
    if operand.base is not None:
        addr += state.regs[operand.base]
    if operand.index is not None:
        addr += state.regs[operand.index] * operand.scale
    return addr & MASK32


def _read_mem(state: X86State, addr: int, size: int) -> int:
    if size == 8:
        return state.memory.read_u8(addr)
    if size == 16:
        return state.memory.read_u16(addr)
    return state.memory.read_u32(addr)


def _write_mem(state: X86State, addr: int, value: int, size: int) -> None:
    if size == 8:
        state.memory.write_u8(addr, value)
    elif size == 16:
        state.memory.write_u16(addr, value)
    else:
        state.memory.write_u32(addr, value)


def read_operand(operand: Operand, state: X86State, width: int) -> int:
    if isinstance(operand, RegOperand):
        return state.get_reg(operand.reg, width)
    if isinstance(operand, ImmOperand):
        return operand.value & _mask(width)
    return _read_mem(state, effective_address(operand, state),
                     operand.size if operand.size != 32 else width)


def write_operand(operand: Operand, state: X86State, value: int,
                  width: int) -> None:
    if isinstance(operand, RegOperand):
        state.set_reg(operand.reg, value, width)
    elif isinstance(operand, MemOperand):
        _write_mem(state, effective_address(operand, state), value, width)
    else:
        raise ArchException("write-to-immediate", state.eip)


# -- flag helpers ------------------------------------------------------------

def _zf_sf(result: int, width: int) -> Tuple[bool, bool]:
    result &= _mask(width)
    return result == 0, bool(result & _sign_bit(width))


def _add_flags(a: int, b: int, carry_in: int, width: int,
               state: X86State) -> int:
    mask = _mask(width)
    raw = (a & mask) + (b & mask) + carry_in
    result = raw & mask
    zf, sf = _zf_sf(result, width)
    of = bool((~(a ^ b) & (a ^ result)) & _sign_bit(width))
    state.set_flags(cf=raw > mask, zf=zf, sf=sf, of=of)
    return result


def _sub_flags(a: int, b: int, borrow_in: int, width: int,
               state: X86State) -> int:
    mask = _mask(width)
    raw = (a & mask) - (b & mask) - borrow_in
    result = raw & mask
    zf, sf = _zf_sf(result, width)
    of = bool(((a ^ b) & (a ^ result)) & _sign_bit(width))
    state.set_flags(cf=raw < 0, zf=zf, sf=sf, of=of)
    return result


def _logic_flags(result: int, width: int, state: X86State) -> int:
    result &= _mask(width)
    zf, sf = _zf_sf(result, width)
    state.set_flags(cf=False, zf=zf, sf=sf, of=False)
    return result


# -- syscalls ---------------------------------------------------------------

def handle_syscall(state: X86State) -> None:
    """INT 0x80 service handler (the 'OS' under x86lite programs)."""
    call = state.regs[Reg.EAX]
    arg = state.regs[Reg.EBX]
    if call == SYS_EXIT:
        state.halted = True
        state.exit_code = arg
    elif call == SYS_PRINT_INT:
        state.output.append(_signed(arg, 32))
    elif call == SYS_PRINT_CHAR:
        state.output.append(chr(arg & 0xFF))
    elif call == SYS_PRINT_STR:
        length = state.regs[Reg.ECX]
        data = state.memory.read(arg, length)
        state.output.append(data.decode("latin-1"))
    else:
        raise ArchException(f"bad-syscall-{call}", state.eip)


# -- main dispatch -------------------------------------------------------------

def execute(instr: Instruction, state: X86State) -> None:
    """Execute one instruction, updating ``state`` (including ``eip``)."""
    op = instr.op
    width = instr.width
    next_eip = (instr.addr + instr.length) & MASK32
    state.eip = next_eip  # default fall-through; CTIs override below

    if op is Op.NOP:
        return
    if op is Op.HLT:
        state.halted = True
        return
    if op is Op.MOV:
        dst, src = instr.operands
        write_operand(dst, state, read_operand(src, state, width), width)
        return
    if op in (Op.MOVZX, Op.MOVSX):
        dst, src = instr.operands
        value = _read_mem(state, effective_address(src, state), src.size)
        if op is Op.MOVSX:
            value = _signed(value, src.size) & MASK32
        write_operand(dst, state, value, 32)
        return
    if op is Op.LEA:
        dst, src = instr.operands
        write_operand(dst, state, effective_address(src, state), width)
        return
    if op is Op.CMOV:
        dst, src = instr.operands
        if cond_holds(instr.cond, state.cf, state.zf, state.sf, state.of):
            write_operand(dst, state, read_operand(src, state, width), width)
        return
    if op is Op.XCHG:
        a, b = instr.operands
        va = read_operand(a, state, width)
        vb = read_operand(b, state, width)
        write_operand(a, state, vb, width)
        write_operand(b, state, va, width)
        return

    if op in (Op.ADD, Op.ADC, Op.SUB, Op.SBB, Op.CMP):
        dst, src = instr.operands
        a = read_operand(dst, state, width)
        b = read_operand(src, state, width)
        if op is Op.ADD:
            result = _add_flags(a, b, 0, width, state)
        elif op is Op.ADC:
            result = _add_flags(a, b, int(state.cf), width, state)
        elif op is Op.SBB:
            result = _sub_flags(a, b, int(state.cf), width, state)
        else:
            result = _sub_flags(a, b, 0, width, state)
        if op is not Op.CMP:
            write_operand(dst, state, result, width)
        return
    if op in (Op.AND, Op.OR, Op.XOR, Op.TEST):
        dst, src = instr.operands
        a = read_operand(dst, state, width)
        b = read_operand(src, state, width)
        if op in (Op.AND, Op.TEST):
            result = a & b
        elif op is Op.OR:
            result = a | b
        else:
            result = a ^ b
        result = _logic_flags(result, width, state)
        if op is not Op.TEST:
            write_operand(dst, state, result, width)
        return
    if op in (Op.INC, Op.DEC):
        (dst,) = instr.operands
        a = read_operand(dst, state, width)
        saved_cf = state.cf  # INC/DEC preserve CF
        result = (_add_flags(a, 1, 0, width, state) if op is Op.INC
                  else _sub_flags(a, 1, 0, width, state))
        state.cf = saved_cf
        write_operand(dst, state, result, width)
        return
    if op is Op.NEG:
        (dst,) = instr.operands
        a = read_operand(dst, state, width)
        result = _sub_flags(0, a, 0, width, state)
        state.cf = a != 0
        write_operand(dst, state, result, width)
        return
    if op is Op.NOT:
        (dst,) = instr.operands
        a = read_operand(dst, state, width)
        write_operand(dst, state, ~a & _mask(width), width)
        return
    if op in (Op.SHL, Op.SHR, Op.SAR):
        dst, count_operand = instr.operands
        count = read_operand(count_operand, state, 32) & 31
        a = read_operand(dst, state, width)
        if count == 0:
            return
        mask = _mask(width)
        if op is Op.SHL:
            result = (a << count) & mask
            cf = bool((a >> (width - count)) & 1) if count <= width else False
            of = (bool(result & _sign_bit(width)) != cf) if count == 1 \
                else state.of
        elif op is Op.SHR:
            result = (a & mask) >> count if count < width else 0
            cf = bool((a >> (count - 1)) & 1) if count <= width else False
            of = bool(a & _sign_bit(width)) if count == 1 else state.of
        else:  # SAR
            signed_a = _signed(a, width)
            result = (signed_a >> count) & mask if count < width \
                else (mask if signed_a < 0 else 0)
            shifted = signed_a >> min(count - 1, width - 1)
            cf = bool(shifted & 1)
            of = False if count == 1 else state.of
        zf, sf = _zf_sf(result, width)
        state.set_flags(cf=cf, zf=zf, sf=sf, of=of)
        write_operand(dst, state, result, width)
        return
    if op is Op.IMUL:
        if len(instr.operands) == 1:
            (src,) = instr.operands
            a = _signed(state.get_reg(Reg.EAX, width), width)
            b = _signed(read_operand(src, state, width), width)
            product = a * b
            mask = _mask(width)
            low = product & mask
            high = (product >> width) & mask
            state.set_reg(Reg.EAX, low, width)
            state.set_reg(Reg.EDX, high, width)
            overflow = product != _signed(low, width)
            zf, sf = _zf_sf(low, width)
            state.set_flags(cf=overflow, of=overflow, zf=zf, sf=sf)
            return
        if len(instr.operands) == 2:
            dst, src = instr.operands
        else:
            dst, src, imm = instr.operands
        a = _signed(read_operand(src, state, width), width)
        b = (_signed(imm.value, width) if len(instr.operands) == 3
             else _signed(read_operand(dst, state, width), width))
        product = a * b
        result = product & _mask(width)
        overflow = product != _signed(result, width)
        zf, sf = _zf_sf(result, width)
        state.set_flags(cf=overflow, of=overflow, zf=zf, sf=sf)
        write_operand(dst, state, result, width)
        return
    if op is Op.MUL:
        (src,) = instr.operands
        a = state.get_reg(Reg.EAX, width)
        b = read_operand(src, state, width)
        product = a * b
        mask = _mask(width)
        low = product & mask
        high = (product >> width) & mask
        state.set_reg(Reg.EAX, low, width)
        state.set_reg(Reg.EDX, high, width)
        zf, sf = _zf_sf(low, width)
        state.set_flags(cf=high != 0, of=high != 0, zf=zf, sf=sf)
        return
    if op in (Op.DIV, Op.IDIV):
        (src,) = instr.operands
        divisor = read_operand(src, state, width)
        mask = _mask(width)
        dividend = (state.get_reg(Reg.EDX, width) << width) | \
            state.get_reg(Reg.EAX, width)
        if divisor == 0:
            state.eip = instr.addr  # fault: EIP points at the faulting instr
            raise ArchException("divide-error", instr.addr)
        if op is Op.IDIV:
            divisor = _signed(divisor, width)
            dividend = _signed(dividend, 2 * width)
            quotient = abs(dividend) // abs(divisor)  # truncate toward zero
            if (dividend < 0) != (divisor < 0):
                quotient = -quotient
            remainder = dividend - quotient * divisor
            in_range = -_sign_bit(width) <= quotient < _sign_bit(width)
        else:
            quotient, remainder = divmod(dividend, divisor)
            in_range = quotient <= mask
        if not in_range:
            state.eip = instr.addr
            raise ArchException("divide-overflow", instr.addr)
        state.set_reg(Reg.EAX, quotient & mask, width)
        state.set_reg(Reg.EDX, remainder & mask, width)
        return

    # -- stack ---------------------------------------------------------------
    if op is Op.PUSH:
        (src,) = instr.operands
        size = 2 if width == 16 else 4
        state.push(read_operand(src, state, width), size)
        return
    if op is Op.POP:
        (dst,) = instr.operands
        size = 2 if width == 16 else 4
        write_operand(dst, state, state.pop(size), width)
        return

    # -- control transfer ------------------------------------------------------
    if op is Op.JMP:
        state.eip = (instr.target if instr.target is not None
                     else read_operand(instr.operands[0], state, 32))
        return
    if op is Op.JCC:
        if cond_holds(instr.cond, state.cf, state.zf, state.sf, state.of):
            state.eip = instr.target
        return
    if op is Op.LOOP:
        # decrement ECX (flags untouched); branch while nonzero
        count = (state.regs[Reg.ECX] - 1) & MASK32
        state.regs[Reg.ECX] = count
        if count != 0:
            state.eip = instr.target
        return
    if op is Op.JECXZ:
        if state.regs[Reg.ECX] == 0:
            state.eip = instr.target
        return
    if op is Op.CALL:
        state.push(next_eip, 4)
        state.eip = (instr.target if instr.target is not None
                     else read_operand(instr.operands[0], state, 32))
        return
    if op is Op.RET:
        state.eip = state.pop(4)
        if instr.operands:
            state.regs[Reg.ESP] = (state.regs[Reg.ESP]
                                   + instr.operands[0].value) & MASK32
        return

    # -- string ops (dword granularity, ascending) -----------------------------
    if op in (Op.MOVS, Op.STOS, Op.LODS):
        iterations = state.regs[Reg.ECX] if instr.rep else 1
        esi, edi = state.regs[Reg.ESI], state.regs[Reg.EDI]
        for _ in range(iterations):
            if op is Op.MOVS:
                state.memory.write_u32(edi, state.memory.read_u32(esi))
                esi = (esi + 4) & MASK32
                edi = (edi + 4) & MASK32
            elif op is Op.STOS:
                state.memory.write_u32(edi, state.regs[Reg.EAX])
                edi = (edi + 4) & MASK32
            else:
                state.regs[Reg.EAX] = state.memory.read_u32(esi)
                esi = (esi + 4) & MASK32
        state.regs[Reg.ESI], state.regs[Reg.EDI] = esi, edi
        if instr.rep:
            state.regs[Reg.ECX] = 0
        return

    # -- system -----------------------------------------------------------------
    if op is Op.INT:
        vector = instr.operands[0].value
        if vector != SYSCALL_VECTOR:
            state.eip = instr.addr
            raise ArchException(f"int-{vector:#x}", instr.addr)
        handle_syscall(state)
        return
    if op is Op.CPUID:
        # Identify the machine; values are arbitrary but fixed.
        state.set_reg(Reg.EAX, 1)
        state.set_reg(Reg.EBX, 0x6C697465)  # 'lite'
        state.set_reg(Reg.ECX, 0)
        state.set_reg(Reg.EDX, 0)
        return

    raise ArchException(f"unimplemented-{op.value}", instr.addr)
