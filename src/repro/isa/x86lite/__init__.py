"""x86lite — the architected (legacy) CISC ISA of the co-designed VM.

A faithful structural subset of IA-32: variable-length instructions
(1–16 bytes) with prefixes, one/two-byte opcodes, ModRM/SIB addressing,
8/32-bit displacements, 8/16/32-bit immediates, eight GPRs and the
CF/ZF/SF/OF flags.  See ``DESIGN.md`` §2 for why this substitutes for the
paper's x86.
"""

from repro.isa.x86lite.assembler import AssemblerError, assemble, \
    assemble_to_bytes
from repro.isa.x86lite.decoder import DecodeError, decode, decode_at
from repro.isa.x86lite.encoder import EncodeError, encode
from repro.isa.x86lite.instruction import (
    ImmOperand,
    Instruction,
    MAX_INSTRUCTION_LENGTH,
    MemOperand,
    RegOperand,
)
from repro.isa.x86lite.opcodes import Op
from repro.isa.x86lite.registers import Cond, Flag, Reg, cond_holds
from repro.isa.x86lite.semantics import (
    SYS_EXIT,
    SYS_PRINT_CHAR,
    SYS_PRINT_INT,
    SYS_PRINT_STR,
    SYSCALL_VECTOR,
    execute,
)
from repro.isa.x86lite.state import ArchException, X86State

__all__ = [
    "ArchException", "AssemblerError", "Cond", "DecodeError", "EncodeError",
    "Flag", "ImmOperand", "Instruction", "MAX_INSTRUCTION_LENGTH",
    "MemOperand", "Op", "Reg", "RegOperand", "SYSCALL_VECTOR", "SYS_EXIT",
    "SYS_PRINT_CHAR", "SYS_PRINT_INT", "SYS_PRINT_STR", "X86State",
    "assemble", "assemble_to_bytes", "cond_holds", "decode", "decode_at",
    "encode", "execute",
]
