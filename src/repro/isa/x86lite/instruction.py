"""Decoded-instruction representation for x86lite.

A decoded :class:`Instruction` is the common currency between the decoder,
the interpreter, the cracker (x86lite → micro-ops), and the hardware-assist
models.  It is deliberately explicit: operation, operand width, operands,
condition code, REP prefix, byte length and address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.isa.x86lite.opcodes import (
    COMPLEX_OPS,
    CONDITIONAL_OPS,
    CONTROL_TRANSFER_OPS,
    FLAG_READING_OPS,
    FLAG_WRITING_OPS,
    Op,
)
from repro.isa.x86lite.registers import Cond, Reg

#: Maximum encoded length of an x86lite instruction, in bytes.  (Real x86
#: allows up to 15/17; our subset tops out below 16, which is what lets the
#: XLTx86 assist fetch any instruction into one 128-bit F register.)
MAX_INSTRUCTION_LENGTH = 16


@dataclass(frozen=True)
class RegOperand:
    """A general-purpose register operand."""

    reg: Reg

    def __str__(self) -> str:
        return self.reg.name.lower()


@dataclass(frozen=True)
class ImmOperand:
    """An immediate operand (value stored unsigned, masked to ``bits``)."""

    value: int
    bits: int = 32

    def __str__(self) -> str:
        return f"{self.value:#x}"


@dataclass(frozen=True)
class MemOperand:
    """A memory operand: ``[base + index*scale + disp]``.

    ``size`` is the access width in bits (8/16/32); MOVZX/MOVSX use narrow
    sizes, everything else follows the instruction's operand width.
    """

    base: Optional[Reg] = None
    index: Optional[Reg] = None
    scale: int = 1
    disp: int = 0
    size: int = 32

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}")
        if self.index is Reg.ESP:
            raise ValueError("ESP cannot be an index register")

    def __str__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(self.base.name.lower())
        if self.index is not None:
            term = self.index.name.lower()
            if self.scale != 1:
                term += f"*{self.scale}"
            parts.append(term)
        if self.disp or not parts:
            parts.append(f"{self.disp:#x}" if self.disp >= 0
                         else f"-{-self.disp:#x}")
        return "[" + "+".join(parts) + "]"


Operand = Union[RegOperand, ImmOperand, MemOperand]


@dataclass(frozen=True)
class Instruction:
    """One decoded x86lite instruction.

    ``target`` is the absolute branch target for direct control transfers
    (JMP/JCC/CALL with relative displacements); indirect transfers leave it
    ``None`` and carry their operand instead.
    """

    op: Op
    operands: Tuple[Operand, ...] = ()
    width: int = 32
    cond: Optional[Cond] = None
    target: Optional[int] = None
    rep: bool = False
    length: int = 0
    addr: int = 0

    # -- classification ---------------------------------------------------

    @property
    def is_control_transfer(self) -> bool:
        return self.op in CONTROL_TRANSFER_OPS

    @property
    def is_conditional(self) -> bool:
        return self.op in CONDITIONAL_OPS

    @property
    def is_direct_branch(self) -> bool:
        return self.target is not None

    @property
    def is_complex(self) -> bool:
        """True if the hardware assist decoders punt this to software.

        REP-prefixed string instructions are complex (data-dependent
        iteration count), as are the microcoded ops in ``COMPLEX_OPS``.
        """
        return self.rep or self.op in COMPLEX_OPS

    @property
    def writes_flags(self) -> bool:
        return self.op in FLAG_WRITING_OPS

    @property
    def reads_flags(self) -> bool:
        return self.op in FLAG_READING_OPS

    @property
    def reads_memory(self) -> bool:
        if self.op in (Op.LEA,):
            return False
        if self.op in (Op.POP, Op.RET):
            return True
        if self.op in (Op.MOVS, Op.LODS):
            return True
        if self.op is Op.PUSH or self.is_control_transfer:
            return any(isinstance(operand, MemOperand)
                       for operand in self.operands)
        # loads: any memory source, or read-modify-write destination
        return any(isinstance(operand, MemOperand)
                   for operand in self.operands)

    @property
    def writes_memory(self) -> bool:
        if self.op in (Op.PUSH, Op.CALL, Op.MOVS, Op.STOS):
            return True
        if self.op in (Op.CMP, Op.TEST, Op.LEA, Op.POP, Op.RET, Op.JMP,
                       Op.JCC):
            return False
        return bool(self.operands) and isinstance(self.operands[0],
                                                  MemOperand)

    @property
    def next_addr(self) -> int:
        return self.addr + self.length

    # -- printing ----------------------------------------------------------

    def mnemonic(self) -> str:
        if self.op is Op.JCC:
            return f"j{self.cond.name.lower()}"
        if self.op is Op.CMOV:
            return f"cmov{self.cond.name.lower()}"
        name = self.op.value
        return f"rep {name}" if self.rep else name

    def __str__(self) -> str:
        parts = [self.mnemonic()]
        if self.target is not None:
            parts.append(f"{self.target:#x}")
        elif self.operands:
            parts.append(", ".join(str(operand) for operand in self.operands))
        return " ".join(parts)
