"""x86lite instruction decoder.

This is the reference implementation of the "first-level (vertical) decode"
that appears three times in the paper's system: in the software BBT (where
it costs ~90 of the 105 native instructions per x86 instruction), in the
XLTx86 backend functional unit, and in the first level of the dual-mode
frontend decoder.  All three reuse this module so that they are decode-
equivalent by construction.
"""

from __future__ import annotations

from typing import Union

from repro.isa.x86lite.instruction import (
    ImmOperand,
    Instruction,
    MAX_INSTRUCTION_LENGTH,
    MemOperand,
    RegOperand,
)
from repro.isa.x86lite.opcodes import (
    ALU_ROW_BY_BASE,
    GROUP1_TO_OP,
    GROUP2_TO_OP,
    GROUP3_TO_OP,
    Group5,
    Op,
)
from repro.isa.x86lite.registers import Cond, Reg
from repro.isa.x86lite.encoder import (
    PREFIX_OPERAND_SIZE,
    PREFIX_REP,
    TWO_BYTE_ESCAPE,
)


class DecodeError(Exception):
    """Raised on bytes that are not a valid x86lite instruction."""


class _Cursor:
    """Byte-stream reader that tracks consumed length."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._start = offset
        self._pos = offset

    @property
    def consumed(self) -> int:
        return self._pos - self._start

    def u8(self) -> int:
        if self._pos >= len(self._data):
            raise DecodeError("truncated instruction")
        value = self._data[self._pos]
        self._pos += 1
        return value

    def i8(self) -> int:
        value = self.u8()
        return value - 0x100 if value & 0x80 else value

    def u16(self) -> int:
        return self.u8() | (self.u8() << 8)

    def u32(self) -> int:
        return self.u16() | (self.u16() << 16)

    def i32(self) -> int:
        value = self.u32()
        return value - 0x100000000 if value & 0x80000000 else value


def _decode_modrm(cursor: _Cursor, size: int = 32
                  ) -> "tuple[int, Union[RegOperand, MemOperand]]":
    """Decode ModRM (+SIB, +disp).  Returns ``(reg_field, rm_operand)``."""
    modrm = cursor.u8()
    mod = modrm >> 6
    reg_field = (modrm >> 3) & 0b111
    rm = modrm & 0b111

    if mod == 0b11:
        return reg_field, RegOperand(Reg(rm))

    base: "Reg | None"
    index: "Reg | None" = None
    scale = 1

    if rm == 0b100:  # SIB follows
        sib = cursor.u8()
        scale = 1 << (sib >> 6)
        index_bits = (sib >> 3) & 0b111
        base_bits = sib & 0b111
        index = None if index_bits == 0b100 else Reg(index_bits)
        if base_bits == 0b101 and mod == 0b00:
            base = None
            disp = cursor.i32()
            return reg_field, MemOperand(base, index, scale, disp, size)
        base = Reg(base_bits)
    elif rm == 0b101 and mod == 0b00:
        disp = cursor.i32()
        return reg_field, MemOperand(None, None, 1, disp, size)
    else:
        base = Reg(rm)

    if mod == 0b00:
        disp = 0
    elif mod == 0b01:
        disp = cursor.i8()
    else:
        disp = cursor.i32()
    return reg_field, MemOperand(base, index, scale, disp, size)


def _imm(cursor: _Cursor, width: int) -> ImmOperand:
    if width == 16:
        return ImmOperand(cursor.u16(), 16)
    return ImmOperand(cursor.u32(), 32)


def _sext_imm8(cursor: _Cursor, width: int) -> ImmOperand:
    value = cursor.i8()
    mask = 0xFFFF if width == 16 else 0xFFFFFFFF
    return ImmOperand(value & mask, width)


def decode(data: bytes, addr: int = 0, offset: int = 0) -> Instruction:
    """Decode one instruction from ``data`` beginning at ``offset``.

    ``addr`` is the architected address of the instruction, used to resolve
    PC-relative branch targets and recorded on the result.
    """
    cursor = _Cursor(data, offset)
    rep = False
    width = 32
    prefix_count = 0
    byte = cursor.u8()
    while byte in (PREFIX_REP, PREFIX_OPERAND_SIZE):
        if byte == PREFIX_REP:
            rep = True
        else:
            width = 16
        prefix_count += 1
        if prefix_count > 4:
            raise DecodeError("too many prefixes")
        byte = cursor.u8()

    def done(op: Op, operands=(), cond=None, target=None,
             op_width: "int | None" = None, rep_flag: "bool | None" = None
             ) -> Instruction:
        length = cursor.consumed
        if length > MAX_INSTRUCTION_LENGTH:
            raise DecodeError(f"instruction longer than "
                              f"{MAX_INSTRUCTION_LENGTH} bytes")
        return Instruction(
            op=op, operands=tuple(operands),
            width=width if op_width is None else op_width,
            cond=cond, target=target,
            rep=rep if rep_flag is None else rep_flag,
            length=length, addr=addr)

    # -- classic ALU rows --------------------------------------------------
    row_base = byte & 0xF8
    row_form = byte & 0x07
    if row_base in ALU_ROW_BY_BASE and row_form in (1, 3, 5):
        op = ALU_ROW_BY_BASE[row_base]
        if row_form == 1:
            reg_field, rm = _decode_modrm(cursor, width)
            return done(op, (rm, RegOperand(Reg(reg_field))))
        if row_form == 3:
            reg_field, rm = _decode_modrm(cursor, width)
            return done(op, (RegOperand(Reg(reg_field)), rm))
        return done(op, (RegOperand(Reg.EAX), _imm(cursor, width)))

    if 0x40 <= byte <= 0x47:
        return done(Op.INC, (RegOperand(Reg(byte - 0x40)),))
    if 0x48 <= byte <= 0x4F:
        return done(Op.DEC, (RegOperand(Reg(byte - 0x48)),))
    if 0x50 <= byte <= 0x57:
        return done(Op.PUSH, (RegOperand(Reg(byte - 0x50)),))
    if 0x58 <= byte <= 0x5F:
        return done(Op.POP, (RegOperand(Reg(byte - 0x58)),))
    if byte == 0x68:
        return done(Op.PUSH, (_imm(cursor, 32),))
    if byte == 0x6A:
        return done(Op.PUSH, (_sext_imm8(cursor, 32),))
    if byte in (0x69, 0x6B):
        reg_field, rm = _decode_modrm(cursor, width)
        imm = (_imm(cursor, width) if byte == 0x69
               else _sext_imm8(cursor, width))
        return done(Op.IMUL, (RegOperand(Reg(reg_field)), rm, imm))
    if 0x70 <= byte <= 0x7F:
        rel = cursor.i8()
        return done(Op.JCC, cond=Cond(byte - 0x70),
                    target=(addr + cursor.consumed + rel) & 0xFFFFFFFF)
    if byte in (0x81, 0x83):
        reg_field, rm = _decode_modrm(cursor, width)
        op = GROUP1_TO_OP[reg_field]
        imm = (_imm(cursor, width) if byte == 0x81
               else _sext_imm8(cursor, width))
        return done(op, (rm, imm))
    if byte == 0x85:
        reg_field, rm = _decode_modrm(cursor, width)
        return done(Op.TEST, (rm, RegOperand(Reg(reg_field))))
    if byte == 0x87:
        reg_field, rm = _decode_modrm(cursor, width)
        return done(Op.XCHG, (rm, RegOperand(Reg(reg_field))))
    if byte == 0x89:
        reg_field, rm = _decode_modrm(cursor, width)
        return done(Op.MOV, (rm, RegOperand(Reg(reg_field))))
    if byte == 0x8B:
        reg_field, rm = _decode_modrm(cursor, width)
        return done(Op.MOV, (RegOperand(Reg(reg_field)), rm))
    if byte == 0x8D:
        reg_field, rm = _decode_modrm(cursor, width)
        if not isinstance(rm, MemOperand):
            raise DecodeError("LEA requires a memory operand")
        return done(Op.LEA, (RegOperand(Reg(reg_field)), rm))
    if byte == 0x90:
        return done(Op.NOP)
    if byte == 0xA5:
        return done(Op.MOVS)
    if byte == 0xAB:
        return done(Op.STOS)
    if byte == 0xAD:
        return done(Op.LODS)
    if 0xB8 <= byte <= 0xBF:
        return done(Op.MOV, (RegOperand(Reg(byte - 0xB8)),
                             _imm(cursor, width)))
    if byte in (0xC1, 0xD1, 0xD3):
        reg_field, rm = _decode_modrm(cursor, width)
        if reg_field not in GROUP2_TO_OP:
            raise DecodeError(f"invalid shift selector {reg_field}")
        op = GROUP2_TO_OP[reg_field]
        if byte == 0xC1:
            count: "ImmOperand | RegOperand" = ImmOperand(cursor.u8(), 8)
        elif byte == 0xD1:
            count = ImmOperand(1, 8)
        else:
            count = RegOperand(Reg.ECX)
        return done(op, (rm, count))
    if byte == 0xC2:
        return done(Op.RET, (ImmOperand(cursor.u16(), 16),))
    if byte == 0xC3:
        return done(Op.RET)
    if byte == 0xC7:
        reg_field, rm = _decode_modrm(cursor, width)
        if reg_field != 0:
            raise DecodeError("invalid 0xC7 selector")
        return done(Op.MOV, (rm, _imm(cursor, width)))
    if byte == 0xCD:
        return done(Op.INT, (ImmOperand(cursor.u8(), 8),))
    if byte == 0xE2:
        rel = cursor.i8()
        return done(Op.LOOP,
                    target=(addr + cursor.consumed + rel) & 0xFFFFFFFF)
    if byte == 0xE3:
        rel = cursor.i8()
        return done(Op.JECXZ,
                    target=(addr + cursor.consumed + rel) & 0xFFFFFFFF)
    if byte == 0xE8:
        rel = cursor.i32()
        return done(Op.CALL,
                    target=(addr + cursor.consumed + rel) & 0xFFFFFFFF)
    if byte == 0xE9:
        rel = cursor.i32()
        return done(Op.JMP,
                    target=(addr + cursor.consumed + rel) & 0xFFFFFFFF)
    if byte == 0xEB:
        rel = cursor.i8()
        return done(Op.JMP,
                    target=(addr + cursor.consumed + rel) & 0xFFFFFFFF)
    if byte == 0xF4:
        return done(Op.HLT)
    if byte == 0xF7:
        reg_field, rm = _decode_modrm(cursor, width)
        if reg_field == 0:
            return done(Op.TEST, (rm, _imm(cursor, width)))
        if reg_field in GROUP3_TO_OP:
            return done(GROUP3_TO_OP[reg_field], (rm,))
        raise DecodeError(f"invalid 0xF7 selector {reg_field}")
    if byte == 0xFF:
        reg_field, rm = _decode_modrm(cursor, width)
        if reg_field == Group5.INC:
            return done(Op.INC, (rm,))
        if reg_field == Group5.DEC:
            return done(Op.DEC, (rm,))
        if reg_field == Group5.CALL:
            return done(Op.CALL, (rm,))
        if reg_field == Group5.JMP:
            return done(Op.JMP, (rm,))
        if reg_field == Group5.PUSH:
            return done(Op.PUSH, (rm,))
        raise DecodeError(f"invalid 0xFF selector {reg_field}")

    # -- two-byte opcodes ----------------------------------------------------
    if byte == TWO_BYTE_ESCAPE:
        second = cursor.u8()
        if 0x40 <= second <= 0x4F:
            reg_field, rm = _decode_modrm(cursor, width)
            return done(Op.CMOV, (RegOperand(Reg(reg_field)), rm),
                        cond=Cond(second - 0x40))
        if 0x80 <= second <= 0x8F:
            rel = cursor.i32()
            return done(Op.JCC, cond=Cond(second - 0x80),
                        target=(addr + cursor.consumed + rel) & 0xFFFFFFFF)
        if second == 0xA2:
            return done(Op.CPUID)
        if second == 0xAF:
            reg_field, rm = _decode_modrm(cursor, width)
            return done(Op.IMUL, (RegOperand(Reg(reg_field)), rm))
        if second in (0xB6, 0xB7, 0xBE, 0xBF):
            size = 8 if second in (0xB6, 0xBE) else 16
            reg_field, rm = _decode_modrm(cursor, size)
            if not isinstance(rm, MemOperand):
                raise DecodeError("MOVZX/MOVSX source must be memory "
                                  "in x86lite")
            op = Op.MOVZX if second in (0xB6, 0xB7) else Op.MOVSX
            return done(op, (RegOperand(Reg(reg_field)), rm), op_width=32)
        raise DecodeError(f"invalid two-byte opcode 0x0F {second:#04x}")

    raise DecodeError(f"invalid opcode {byte:#04x}")


def decode_at(memory, addr: int) -> Instruction:
    """Decode one instruction directly from an :class:`AddressSpace`."""
    window = memory.read(addr, MAX_INSTRUCTION_LENGTH)
    return decode(window, addr=addr)
