"""Two-pass text assembler for x86lite.

The assembler exists so that tests, examples and workload programs can be
written as readable source rather than byte strings.  Syntax is a small
NASM-flavored dialect::

    .org 0x400000
    start:
        mov  eax, 10            ; comment
        lea  edx, [ebx+ecx*4+8]
    loop:
        dec  eax
        jnz  loop
        mov  eax, 0             ; SYS_EXIT
        int  0x80

Directives: ``.org ADDR``, ``.db b0, b1, ...``, ``.dd d0, d1, ...``,
``.zero N``, ``.align N``.  The entry point is the ``start`` (or ``_start``)
label if present, else the text base.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.isa.x86lite.encoder import EncodeError, encode
from repro.isa.x86lite.instruction import (
    ImmOperand,
    Instruction,
    MemOperand,
    RegOperand,
)
from repro.isa.x86lite.opcodes import Op
from repro.isa.x86lite.registers import (
    COND_BY_NAME,
    REG16_BY_NAME,
    REG_BY_NAME,
    Reg,
)
from repro.memory.loader import DEFAULT_TEXT_BASE, Image


class AssemblerError(Exception):
    """Raised on malformed assembly source."""

    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


_SIMPLE_OPS = {
    "mov": Op.MOV, "lea": Op.LEA, "add": Op.ADD, "adc": Op.ADC,
    "sub": Op.SUB, "sbb": Op.SBB, "and": Op.AND, "or": Op.OR,
    "xor": Op.XOR, "cmp": Op.CMP, "test": Op.TEST, "xchg": Op.XCHG,
    "inc": Op.INC, "dec": Op.DEC, "neg": Op.NEG, "not": Op.NOT,
    "shl": Op.SHL, "shr": Op.SHR, "sar": Op.SAR,
    "imul": Op.IMUL, "mul": Op.MUL, "div": Op.DIV, "idiv": Op.IDIV,
    "push": Op.PUSH, "pop": Op.POP,
    "movzx": Op.MOVZX, "movsx": Op.MOVSX,
    "nop": Op.NOP, "hlt": Op.HLT, "int": Op.INT, "cpuid": Op.CPUID,
    "ret": Op.RET, "jmp": Op.JMP, "call": Op.CALL,
    "loop": Op.LOOP, "jecxz": Op.JECXZ,
    "movsd": Op.MOVS, "stosd": Op.STOS, "lodsd": Op.LODS,
}

_BRANCH_OPS = frozenset({Op.JMP, Op.JCC, Op.CALL, Op.LOOP, Op.JECXZ})

_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")

#: Placeholder for still-unresolved label values during pass 1; large enough
#: that no immediate-shrinking encoding form is selected for it.
_PLACEHOLDER = 0x0FFF_FFF0


@dataclass
class _PendingOperand:
    """Parsed operand; label refs are resolved between passes."""

    kind: str                     # 'reg', 'imm', 'mem', 'label'
    reg: Optional[Reg] = None
    value: int = 0
    label: Optional[str] = None
    mem: Optional[MemOperand] = None
    mem_label: Optional[str] = None   # label term inside a memory operand
    width: int = 32


@dataclass
class _Statement:
    line_no: int
    mnemonic: str
    operands: List[_PendingOperand] = field(default_factory=list)
    rep: bool = False
    target_label: Optional[str] = None
    # filled during pass 1:
    addr: int = 0
    length: int = 0
    force_long: bool = False


def _parse_number(text: str, line_no: int) -> int:
    text = text.strip()
    if len(text) == 3 and text[0] == text[2] == "'":
        return ord(text[1])
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad number {text!r}", line_no)


def _parse_memory(text: str, line_no: int,
                  size: int) -> Tuple[MemOperand, Optional[str]]:
    """Parse ``[...]``; returns the operand plus an optional label term."""
    inner = text.strip()[1:-1].strip()
    if not inner:
        raise AssemblerError("empty memory operand", line_no)
    base: Optional[Reg] = None
    index: Optional[Reg] = None
    scale = 1
    disp = 0
    label: Optional[str] = None
    # split on +/- while keeping signs for displacement terms
    terms = re.findall(r"[+-]?[^+-]+", inner.replace(" ", ""))
    for term in terms:
        sign = -1 if term.startswith("-") else 1
        body = term.lstrip("+-")
        if "*" in body:
            left, right = body.split("*", 1)
            if left.lower() in REG_BY_NAME:
                reg_name, scale_text = left, right
            elif right.lower() in REG_BY_NAME:
                reg_name, scale_text = right, left
            else:
                raise AssemblerError(f"bad scaled index {term!r}", line_no)
            if index is not None:
                raise AssemblerError("two index registers", line_no)
            if sign < 0:
                raise AssemblerError("negative index term", line_no)
            index = REG_BY_NAME[reg_name.lower()]
            scale = _parse_number(scale_text, line_no)
        elif body.lower() in REG_BY_NAME:
            if sign < 0:
                raise AssemblerError("negative register term", line_no)
            reg = REG_BY_NAME[body.lower()]
            if base is None:
                base = reg
            elif index is None:
                index = reg
            else:
                raise AssemblerError("too many registers in address", line_no)
        elif _LABEL_RE.match(body) and not re.match(r"^(0x|\d|')", body):
            if sign < 0 or label is not None:
                raise AssemblerError(f"bad label term {term!r}", line_no)
            label = body
        else:
            disp += sign * _parse_number(body, line_no)
    try:
        return MemOperand(base, index, scale, disp, size), label
    except ValueError as exc:
        raise AssemblerError(str(exc), line_no)


def _parse_operand(text: str, line_no: int) -> _PendingOperand:
    text = text.strip()
    lowered = text.lower()
    size = 32
    for keyword, keyword_size in (("byte", 8), ("word", 16), ("dword", 32)):
        if lowered.startswith(keyword + " ") or lowered.startswith(
                keyword + "["):
            size = keyword_size
            text = text[len(keyword):].strip()
            lowered = text.lower()
            break
    if text.startswith("["):
        if not text.endswith("]"):
            raise AssemblerError(f"unterminated memory operand {text!r}",
                                 line_no)
        mem, mem_label = _parse_memory(text, line_no, size)
        return _PendingOperand("mem", mem=mem, mem_label=mem_label)
    if lowered in REG_BY_NAME:
        return _PendingOperand("reg", reg=REG_BY_NAME[lowered], width=32)
    if lowered in REG16_BY_NAME:
        return _PendingOperand("reg", reg=REG16_BY_NAME[lowered], width=16)
    if re.match(r"^[+-]?(0x[0-9a-fA-F]+|\d+|'.')$", text):
        return _PendingOperand("imm", value=_parse_number(text, line_no))
    if _LABEL_RE.match(text):
        return _PendingOperand("label", label=text)
    raise AssemblerError(f"bad operand {text!r}", line_no)


def _split_operands(text: str) -> List[str]:
    out = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            out.append(current)
            current = ""
        else:
            current += char
    if current.strip():
        out.append(current)
    return [item.strip() for item in out]


def _statement_width(stmt: _Statement) -> int:
    for operand in stmt.operands:
        if operand.kind == "reg":
            return operand.width
    return 32


def _build_instruction(stmt: _Statement, labels: Dict[str, int],
                       resolved: bool, line_no: int) -> Instruction:
    """Materialize an encodable Instruction from a parsed statement."""
    mnemonic = stmt.mnemonic
    cond = None
    if mnemonic in _SIMPLE_OPS:
        op = _SIMPLE_OPS[mnemonic]
    elif mnemonic.startswith("j") and mnemonic[1:] in COND_BY_NAME:
        op = Op.JCC
        cond = COND_BY_NAME[mnemonic[1:]]
    elif mnemonic.startswith("cmov") and mnemonic[4:] in COND_BY_NAME:
        op = Op.CMOV
        cond = COND_BY_NAME[mnemonic[4:]]
    else:
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no)

    width = _statement_width(stmt)
    target = None
    operands: List[Union[RegOperand, ImmOperand, MemOperand]] = []

    def resolve(pending: _PendingOperand) -> int:
        if pending.label is None:
            return pending.value
        if pending.label in labels:
            return labels[pending.label]
        if resolved:
            raise AssemblerError(f"undefined label {pending.label!r}",
                                 line_no)
        return _PLACEHOLDER

    if op in _BRANCH_OPS and stmt.operands and \
            stmt.operands[0].kind == "label":
        pending = stmt.operands[0]
        if pending.label in labels:
            target = labels[pending.label]
        elif resolved:
            raise AssemblerError(f"undefined label {pending.label!r}",
                                 line_no)
        elif op in (Op.LOOP, Op.JECXZ):
            # rel8-only forms: size with a nearby placeholder; pass 2
            # checks the real displacement fits
            target = stmt.addr
        else:
            target = _PLACEHOLDER
            stmt.force_long = True
    else:
        for pending in stmt.operands:
            if pending.kind == "reg":
                operands.append(RegOperand(pending.reg))
            elif pending.kind == "mem":
                mem = pending.mem
                if pending.mem_label is not None:
                    base_value = resolve(_PendingOperand(
                        "label", label=pending.mem_label))
                    mem = MemOperand(mem.base, mem.index, mem.scale,
                                     mem.disp + base_value, mem.size)
                operands.append(mem)
            else:  # imm or label-as-immediate
                bits = 16 if width == 16 else 32
                mask = (1 << bits) - 1
                operands.append(ImmOperand(resolve(pending) & mask, bits))

    # NASM sugar: "imul reg, imm" means "imul reg, reg, imm"
    if op is Op.IMUL and len(operands) == 2 \
            and isinstance(operands[1], ImmOperand):
        operands = [operands[0], operands[0], operands[1]]

    return Instruction(op=op, operands=tuple(operands), width=width,
                       cond=cond, target=target,
                       rep=stmt.rep, addr=stmt.addr)


def assemble(source: str, base: int = DEFAULT_TEXT_BASE) -> Image:
    """Assemble ``source`` into an :class:`Image` with a ``text`` segment."""
    labels: Dict[str, int] = {}
    statements: List[Tuple[str, object]] = []   # ('instr'|'data'|..., payload)

    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        while True:
            match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", line)
            if not match:
                break
            statements.append(("label", (match.group(1), line_no)))
            line = match.group(2).strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split(None, 1)
            directive = parts[0].lower()
            args = parts[1] if len(parts) > 1 else ""
            statements.append(("directive", (directive, args, line_no)))
            continue
        rep = False
        tokens = line.split(None, 1)
        mnemonic = tokens[0].lower()
        rest = tokens[1] if len(tokens) > 1 else ""
        if mnemonic == "rep":
            rep = True
            tokens = rest.split(None, 1)
            mnemonic = tokens[0].lower()
            rest = tokens[1] if len(tokens) > 1 else ""
        stmt = _Statement(line_no=line_no, mnemonic=mnemonic, rep=rep,
                          operands=[_parse_operand(text, line_no)
                                    for text in _split_operands(rest)])
        statements.append(("instr", stmt))

    # -- pass 1: assign addresses ------------------------------------------------
    addr = base
    org = base
    for kind, payload in statements:
        if kind == "label":
            name, line_no = payload
            if name in labels:
                raise AssemblerError(f"duplicate label {name!r}", line_no)
            labels[name] = addr
        elif kind == "directive":
            directive, args, line_no = payload
            if directive == ".org":
                addr = org = _parse_number(args, line_no)
            elif directive == ".db":
                addr += len(_split_operands(args))
            elif directive == ".dd":
                addr += 4 * len(_split_operands(args))
            elif directive == ".zero":
                addr += _parse_number(args, line_no)
            elif directive == ".align":
                alignment = _parse_number(args, line_no)
                addr = (addr + alignment - 1) // alignment * alignment
            else:
                raise AssemblerError(f"unknown directive {directive!r}",
                                     line_no)
        else:
            stmt = payload
            stmt.addr = addr
            try:
                instr = _build_instruction(stmt, labels, resolved=False,
                                           line_no=stmt.line_no)
                stmt.length = len(encode(instr, addr=stmt.addr,
                                         force_long_branch=stmt.force_long))
            except EncodeError as exc:
                raise AssemblerError(str(exc), stmt.line_no)
            addr += stmt.length

    # -- pass 2: emit bytes --------------------------------------------------
    del org  # .org directives are re-processed below
    chunks: List[Tuple[int, bytes]] = []
    addr = base
    for kind, payload in statements:
        if kind == "label":
            continue
        if kind == "directive":
            directive, args, line_no = payload
            if directive == ".org":
                addr = _parse_number(args, line_no)
            elif directive == ".db":
                data = bytes(_parse_number(text, line_no) & 0xFF
                             for text in _split_operands(args))
                chunks.append((addr, data))
                addr += len(data)
            elif directive == ".dd":
                data = b"".join(
                    (_parse_number(text, line_no) & 0xFFFFFFFF)
                    .to_bytes(4, "little")
                    for text in _split_operands(args))
                chunks.append((addr, data))
                addr += len(data)
            elif directive == ".zero":
                count = _parse_number(args, line_no)
                chunks.append((addr, bytes(count)))
                addr += count
            elif directive == ".align":
                alignment = _parse_number(args, line_no)
                new_addr = (addr + alignment - 1) // alignment * alignment
                if new_addr > addr:
                    chunks.append((addr, bytes(new_addr - addr)))
                addr = new_addr
            continue
        stmt = payload
        if stmt.addr != addr:
            raise AssemblerError("phase error (pass sizes disagree)",
                                 stmt.line_no)
        instr = _build_instruction(stmt, labels, resolved=True,
                                   line_no=stmt.line_no)
        data = encode(instr, addr=stmt.addr,
                      force_long_branch=stmt.force_long)
        if len(data) != stmt.length:
            raise AssemblerError("phase error (encoding length changed)",
                                 stmt.line_no)
        chunks.append((addr, data))
        addr += len(data)

    if not chunks:
        raise AssemblerError("empty program")

    # merge chunks into contiguous segments
    chunks.sort(key=lambda item: item[0])
    segments: List[Tuple[int, bytearray]] = []
    for chunk_addr, data in chunks:
        if segments and segments[-1][0] + len(segments[-1][1]) == chunk_addr:
            segments[-1][1].extend(data)
        else:
            segments.append((chunk_addr, bytearray(data)))

    entry = labels.get("start", labels.get("_start", segments[0][0]))
    image = Image(entry=entry, labels=dict(labels))
    for number, (segment_addr, data) in enumerate(segments):
        name = "text" if number == 0 else f"data{number}"
        image.add_segment(name, segment_addr, bytes(data))
    return image


def assemble_to_bytes(source: str, base: int = DEFAULT_TEXT_BASE) -> bytes:
    """Assemble and return the raw text-segment bytes (single-segment use)."""
    image = assemble(source, base)
    return image.text.data
