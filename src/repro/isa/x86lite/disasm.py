"""x86lite disassembler.

Formats decoded instructions with their raw bytes, resolves branch
targets through an optional symbol table, and walks whole ranges or
control-flow-discovered regions.  Used by examples, the CLI and debug
tooling; the decoder itself lives in :mod:`repro.isa.x86lite.decoder`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.isa.x86lite.decoder import DecodeError, decode
from repro.isa.x86lite.instruction import Instruction, \
    MAX_INSTRUCTION_LENGTH


class DisasmLine:
    """One formatted disassembly line."""

    def __init__(self, instr: Instruction, raw: bytes,
                 symbol: Optional[str] = None) -> None:
        self.instr = instr
        self.raw = raw
        self.symbol = symbol

    @property
    def addr(self) -> int:
        return self.instr.addr

    def format(self, symbols: Optional[Dict[int, str]] = None) -> str:
        text = str(self.instr)
        if symbols and self.instr.target is not None:
            name = symbols.get(self.instr.target)
            if name:
                text = f"{self.instr.mnemonic()} {name}"
        prefix = f"{self.symbol}:\n" if self.symbol else ""
        return (f"{prefix}  {self.addr:#010x}: "
                f"{self.raw.hex():<20s} {text}")


def disassemble_range(data: bytes, base: int = 0,
                      limit: Optional[int] = None) -> List[DisasmLine]:
    """Linearly disassemble ``data`` as a sequence of instructions.

    Stops at the first undecodable byte or after ``limit`` instructions.
    """
    lines: List[DisasmLine] = []
    offset = 0
    while offset < len(data):
        if limit is not None and len(lines) >= limit:
            break
        try:
            instr = decode(data, addr=base + offset, offset=offset)
        except DecodeError:
            break
        lines.append(DisasmLine(instr,
                                data[offset:offset + instr.length]))
        offset += instr.length
    return lines


def disassemble_memory(memory, addr: int, count: int) -> List[DisasmLine]:
    """Disassemble ``count`` instructions from an address space."""
    lines: List[DisasmLine] = []
    pc = addr
    for _ in range(count):
        window = memory.read(pc, MAX_INSTRUCTION_LENGTH)
        try:
            instr = decode(window, addr=pc)
        except DecodeError:
            break
        lines.append(DisasmLine(instr, window[:instr.length]))
        pc = instr.next_addr
    return lines


def discover_code(memory, entry: int,
                  max_instructions: int = 10_000
                  ) -> Dict[int, Instruction]:
    """Control-flow code discovery from ``entry``.

    Follows fall-through paths and both directions of direct branches
    (the static analogue of what the BBT discovers dynamically); stops at
    indirect transfers.  Returns a map of address -> instruction.
    """
    seen: Dict[int, Instruction] = {}
    work: List[int] = [entry]
    while work and len(seen) < max_instructions:
        pc = work.pop()
        if pc in seen:
            continue
        window = memory.read(pc, MAX_INSTRUCTION_LENGTH)
        try:
            instr = decode(window, addr=pc)
        except DecodeError:
            continue
        seen[pc] = instr
        if instr.target is not None:
            work.append(instr.target)
        if not instr.is_control_transfer or instr.is_conditional:
            work.append(instr.next_addr)
        elif instr.op.value == "call" and instr.target is not None:
            work.append(instr.next_addr)  # calls return
    return seen


def format_listing(lines: List[DisasmLine],
                   symbols: Optional[Dict[str, int]] = None) -> str:
    """Render lines, annotating label addresses from a symbol table."""
    by_addr = {addr: name for name, addr in (symbols or {}).items()}
    out = []
    for line in lines:
        if line.addr in by_addr:
            out.append(f"{by_addr[line.addr]}:")
        out.append(line.format(symbols=by_addr and {
            addr: name for addr, name in by_addr.items()}))
    return "\n".join(out)


def iter_instructions(memory, start: int, end: int
                      ) -> Iterator[Tuple[int, Instruction]]:
    """Yield (addr, instruction) pairs over [start, end)."""
    pc = start
    while pc < end:
        window = memory.read(pc, MAX_INSTRUCTION_LENGTH)
        instr = decode(window, addr=pc)
        yield pc, instr
        pc = instr.next_addr
