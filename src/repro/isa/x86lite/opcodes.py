"""Operation vocabulary and classification for the x86lite ISA.

The subset follows IA-32's opcode-map structure closely enough that decoding
is genuinely variable-length CISC work: one- and two-byte opcodes, ModRM/SIB
addressing, 8/32-bit displacements and 8/16/32-bit immediates, and prefix
bytes.  The concrete byte-level maps live in ``encoder.py``/``decoder.py``;
this module defines the semantic vocabulary they share.
"""

from __future__ import annotations

import enum


class Op(enum.Enum):
    """Architected operations (semantic level, independent of encoding)."""

    # data movement
    MOV = "mov"
    MOVZX = "movzx"
    MOVSX = "movsx"
    LEA = "lea"
    CMOV = "cmov"
    PUSH = "push"
    POP = "pop"
    XCHG = "xchg"
    # integer ALU
    ADD = "add"
    ADC = "adc"
    SUB = "sub"
    SBB = "sbb"
    AND = "and"
    OR = "or"
    XOR = "xor"
    CMP = "cmp"
    TEST = "test"
    INC = "inc"
    DEC = "dec"
    NEG = "neg"
    NOT = "not"
    IMUL = "imul"
    MUL = "mul"
    DIV = "div"
    IDIV = "idiv"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    # control transfer
    JMP = "jmp"
    JCC = "jcc"
    CALL = "call"
    RET = "ret"
    LOOP = "loop"        # dec ECX; branch if nonzero (flags untouched)
    JECXZ = "jecxz"      # branch if ECX == 0
    # string
    MOVS = "movs"
    STOS = "stos"
    LODS = "lods"
    # system / misc
    NOP = "nop"
    HLT = "hlt"
    INT = "int"
    CPUID = "cpuid"


#: Control-transfer instructions; a basic block ends after any of these.
CONTROL_TRANSFER_OPS = frozenset({Op.JMP, Op.JCC, Op.CALL, Op.RET, Op.INT,
                                  Op.HLT, Op.LOOP, Op.JECXZ})

#: Conditional control transfers (two possible successors).
CONDITIONAL_OPS = frozenset({Op.JCC, Op.LOOP, Op.JECXZ})

#: Operations whose hardware decode is "too complex" for the single-cycle
#: assist path (the XLTx86 unit raises ``Flag_cmplx``; the dual-mode decoder
#: traps to microcode/VMM).  This mirrors the paper's escape hatch for rare,
#: long, or microcoded instructions.  LOOP/JECXZ branch on ECX without
#: touching flags, which has no single-micro-op expression in the fusible
#: ISA — they are microcoded, exactly like real x86 implementations treat
#: them.
COMPLEX_OPS = frozenset({Op.DIV, Op.IDIV, Op.INT, Op.CPUID, Op.HLT,
                         Op.LOOP, Op.JECXZ})

#: Operations that write the arithmetic flags.
FLAG_WRITING_OPS = frozenset({
    Op.ADD, Op.ADC, Op.SUB, Op.SBB, Op.AND, Op.OR, Op.XOR, Op.CMP, Op.TEST,
    Op.INC, Op.DEC, Op.NEG, Op.IMUL, Op.MUL, Op.SHL, Op.SHR, Op.SAR,
})

#: Operations that read the arithmetic flags.
FLAG_READING_OPS = frozenset({Op.JCC, Op.CMOV, Op.ADC, Op.SBB})

#: String operations (may carry a REP prefix; REP forms are "complex").
STRING_OPS = frozenset({Op.MOVS, Op.STOS, Op.LODS})


class Group1(enum.IntEnum):
    """/reg selector for the 0x81/0x83 immediate-ALU group."""

    ADD = 0
    OR = 1
    ADC = 2
    SBB = 3
    AND = 4
    SUB = 5
    XOR = 6
    CMP = 7


class Group2(enum.IntEnum):
    """/reg selector for the 0xC1/0xD1 shift group (subset)."""

    SHL = 4
    SHR = 5
    SAR = 7


class Group3(enum.IntEnum):
    """/reg selector for the 0xF7 unary group."""

    NOT = 2
    NEG = 3
    MUL = 4
    IMUL = 5
    DIV = 6
    IDIV = 7


class Group5(enum.IntEnum):
    """/reg selector for the 0xFF group."""

    INC = 0
    DEC = 1
    CALL = 2
    JMP = 4
    PUSH = 6


GROUP1_TO_OP = {
    Group1.ADD: Op.ADD, Group1.OR: Op.OR, Group1.ADC: Op.ADC,
    Group1.SBB: Op.SBB, Group1.AND: Op.AND, Group1.SUB: Op.SUB,
    Group1.XOR: Op.XOR, Group1.CMP: Op.CMP,
}
OP_TO_GROUP1 = {op: sel for sel, op in GROUP1_TO_OP.items()}

GROUP2_TO_OP = {Group2.SHL: Op.SHL, Group2.SHR: Op.SHR, Group2.SAR: Op.SAR}
OP_TO_GROUP2 = {op: sel for sel, op in GROUP2_TO_OP.items()}

GROUP3_TO_OP = {
    Group3.NOT: Op.NOT, Group3.NEG: Op.NEG, Group3.MUL: Op.MUL,
    Group3.IMUL: Op.IMUL, Group3.DIV: Op.DIV, Group3.IDIV: Op.IDIV,
}
OP_TO_GROUP3 = {op: sel for sel, op in GROUP3_TO_OP.items()}

#: Base bytes of the classic ALU row pattern (op r/m,r = base+1;
#: op r,r/m = base+3; op eAX,imm = base+5).
ALU_ROW_BASE = {
    Op.ADD: 0x00, Op.OR: 0x08, Op.ADC: 0x10, Op.SBB: 0x18,
    Op.AND: 0x20, Op.SUB: 0x28, Op.XOR: 0x30, Op.CMP: 0x38,
}
ALU_ROW_BY_BASE = {base: op for op, base in ALU_ROW_BASE.items()}
