"""x86lite instruction encoder (assembler backend).

Produces IA-32-shaped encodings: optional prefixes, one- or two-byte
opcodes, ModRM/SIB, displacement, immediate.  The encoder always emits a
canonical form (shortest applicable immediate/displacement), which the
decoder reproduces — giving an encode/decode round-trip that the property
tests rely on.
"""

from __future__ import annotations

import struct
from typing import Optional, Union

from repro.isa.x86lite.instruction import (
    ImmOperand,
    Instruction,
    MemOperand,
    RegOperand,
)
from repro.isa.x86lite.opcodes import (
    ALU_ROW_BASE,
    OP_TO_GROUP1,
    OP_TO_GROUP2,
    OP_TO_GROUP3,
    Group5,
    Op,
)
from repro.isa.x86lite.registers import Reg

PREFIX_OPERAND_SIZE = 0x66
PREFIX_REP = 0xF3
TWO_BYTE_ESCAPE = 0x0F


class EncodeError(Exception):
    """Raised when an instruction has no encoding in the x86lite subset."""


def _i8(value: int) -> bytes:
    return struct.pack("<b", value)


def _u8(value: int) -> bytes:
    return struct.pack("<B", value & 0xFF)


def _u16(value: int) -> bytes:
    return struct.pack("<H", value & 0xFFFF)


def _i32(value: int) -> bytes:
    return struct.pack("<i", ((value + 0x80000000) & 0xFFFFFFFF) - 0x80000000)


def _u32(value: int) -> bytes:
    return struct.pack("<I", value & 0xFFFFFFFF)


def _signed(value: int, bits: int = 32) -> int:
    mask = (1 << bits) - 1
    value &= mask
    sign = 1 << (bits - 1)
    return value - (mask + 1) if value & sign else value


def _fits_i8(value: int) -> bool:
    return -128 <= _signed(value) <= 127


def encode_modrm(reg_field: int, rm: Union[RegOperand, MemOperand]) -> bytes:
    """Encode the ModRM byte (and SIB/displacement) for one r/m operand."""
    if isinstance(rm, RegOperand):
        return _u8(0xC0 | (reg_field << 3) | rm.reg)

    base, index, scale, disp = rm.base, rm.index, rm.scale, rm.disp
    scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[scale]

    if base is None and index is None:
        # absolute disp32: mod=00 rm=101
        return _u8((reg_field << 3) | 0b101) + _i32(disp)

    needs_sib = index is not None or base is Reg.ESP or base is None

    if base is None:
        # index-only form requires SIB with "no base" (mod=00, base=101)
        modrm = _u8((reg_field << 3) | 0b100)
        sib = _u8((scale_bits << 6) | (index << 3) | 0b101)
        return modrm + sib + _i32(disp)

    # choose mod by displacement size; EBP base cannot use mod=00
    if disp == 0 and base is not Reg.EBP:
        mod, disp_bytes = 0b00, b""
    elif -128 <= disp <= 127:
        mod, disp_bytes = 0b01, _i8(disp)
    else:
        mod, disp_bytes = 0b10, _i32(disp)

    if needs_sib:
        modrm = _u8((mod << 6) | (reg_field << 3) | 0b100)
        index_bits = index if index is not None else 0b100
        sib = _u8((scale_bits << 6) | (index_bits << 3) | base)
        return modrm + sib + disp_bytes
    return _u8((mod << 6) | (reg_field << 3) | base) + disp_bytes


def _imm_bytes(value: int, width: int) -> bytes:
    return _u16(value) if width == 16 else _u32(value)


def _alu_two_operand(instr: Instruction, prefix: bytes) -> bytes:
    dst, src = instr.operands
    base = ALU_ROW_BASE[instr.op]
    if isinstance(src, ImmOperand):
        selector = OP_TO_GROUP1[instr.op]
        if _fits_i8(src.value):
            body = _u8(0x83) + encode_modrm(selector, dst) + _i8(
                _signed(src.value, 8) if src.value > 0x7F else _signed(src.value))
            return prefix + body
        if isinstance(dst, RegOperand) and dst.reg is Reg.EAX:
            return prefix + _u8(base + 5) + _imm_bytes(src.value, instr.width)
        return (prefix + _u8(0x81) + encode_modrm(selector, dst)
                + _imm_bytes(src.value, instr.width))
    if isinstance(src, RegOperand):
        return prefix + _u8(base + 1) + encode_modrm(src.reg, dst)
    if isinstance(dst, RegOperand) and isinstance(src, MemOperand):
        return prefix + _u8(base + 3) + encode_modrm(dst.reg, src)
    raise EncodeError(f"unencodable ALU form: {instr}")


def _encode_mov(instr: Instruction, prefix: bytes) -> bytes:
    dst, src = instr.operands
    if isinstance(src, ImmOperand):
        if isinstance(dst, RegOperand):
            return prefix + _u8(0xB8 + dst.reg) + _imm_bytes(src.value,
                                                             instr.width)
        return (prefix + _u8(0xC7) + encode_modrm(0, dst)
                + _imm_bytes(src.value, instr.width))
    if isinstance(src, RegOperand):
        return prefix + _u8(0x89) + encode_modrm(src.reg, dst)
    if isinstance(dst, RegOperand) and isinstance(src, MemOperand):
        return prefix + _u8(0x8B) + encode_modrm(dst.reg, src)
    raise EncodeError(f"unencodable MOV form: {instr}")


def _branch_displacement(instr: Instruction, addr: int,
                         short_len: int, long_len: int,
                         force_long: bool) -> "tuple[bool, int]":
    """Pick the short (rel8) or long (rel32) branch form.

    Returns ``(use_short, displacement)`` where the displacement is relative
    to the end of the chosen encoding.
    """
    if instr.target is None:
        raise EncodeError(f"direct branch without target: {instr}")
    short_rel = instr.target - (addr + short_len)
    if not force_long and -128 <= short_rel <= 127:
        return True, short_rel
    return False, instr.target - (addr + long_len)


def encode(instr: Instruction, addr: Optional[int] = None,
           force_long_branch: bool = False) -> bytes:
    """Encode ``instr`` to bytes.

    ``addr`` is the address the encoding will be placed at (needed for
    PC-relative control transfers; defaults to ``instr.addr``).
    ``force_long_branch`` pins rel32 forms, which the two-pass assembler
    uses to keep pass-1 sizing decisions stable.
    """
    if addr is None:
        addr = instr.addr
    prefix = b""
    if instr.rep:
        prefix += _u8(PREFIX_REP)
    if instr.width == 16:
        prefix += _u8(PREFIX_OPERAND_SIZE)

    op = instr.op
    ops = instr.operands

    if op in ALU_ROW_BASE:
        return _alu_two_operand(instr, prefix)
    if op is Op.MOV:
        return _encode_mov(instr, prefix)
    if op is Op.TEST:
        dst, src = ops
        if isinstance(src, ImmOperand):
            return (prefix + _u8(0xF7) + encode_modrm(0, dst)
                    + _imm_bytes(src.value, instr.width))
        return prefix + _u8(0x85) + encode_modrm(src.reg, dst)
    if op is Op.XCHG:
        dst, src = ops
        if not isinstance(src, RegOperand):
            raise EncodeError("XCHG source must be a register")
        return prefix + _u8(0x87) + encode_modrm(src.reg, dst)
    if op is Op.LEA:
        dst, src = ops
        if not (isinstance(dst, RegOperand) and isinstance(src, MemOperand)):
            raise EncodeError("LEA needs reg, mem")
        return prefix + _u8(0x8D) + encode_modrm(dst.reg, src)
    if op in (Op.MOVZX, Op.MOVSX):
        dst, src = ops
        if not (isinstance(dst, RegOperand) and isinstance(src, MemOperand)):
            raise EncodeError(f"{op.value} needs reg, mem in x86lite")
        table = {(Op.MOVZX, 8): 0xB6, (Op.MOVZX, 16): 0xB7,
                 (Op.MOVSX, 8): 0xBE, (Op.MOVSX, 16): 0xBF}
        second = table.get((op, src.size))
        if second is None:
            raise EncodeError(f"{op.value} source size {src.size} invalid")
        return (prefix + _u8(TWO_BYTE_ESCAPE) + _u8(second)
                + encode_modrm(dst.reg, src))
    if op is Op.CMOV:
        dst, src = ops
        return (prefix + _u8(TWO_BYTE_ESCAPE) + _u8(0x40 + instr.cond)
                + encode_modrm(dst.reg, src))
    if op is Op.PUSH:
        (src,) = ops
        if isinstance(src, RegOperand):
            return prefix + _u8(0x50 + src.reg)
        if isinstance(src, ImmOperand):
            if _fits_i8(src.value):
                return prefix + _u8(0x6A) + _i8(_signed(src.value, 8)
                                                if src.value > 0x7F
                                                else _signed(src.value))
            return prefix + _u8(0x68) + _u32(src.value)
        return prefix + _u8(0xFF) + encode_modrm(Group5.PUSH, src)
    if op is Op.POP:
        (dst,) = ops
        if isinstance(dst, RegOperand):
            return prefix + _u8(0x58 + dst.reg)
        raise EncodeError("POP destination must be a register")
    if op in (Op.INC, Op.DEC):
        (dst,) = ops
        if isinstance(dst, RegOperand) and instr.width == 32:
            base = 0x40 if op is Op.INC else 0x48
            return prefix + _u8(base + dst.reg)
        selector = Group5.INC if op is Op.INC else Group5.DEC
        return prefix + _u8(0xFF) + encode_modrm(selector, dst)
    if op in OP_TO_GROUP2:
        dst, count = ops
        selector = OP_TO_GROUP2[op]
        if isinstance(count, ImmOperand):
            if count.value == 1:
                return prefix + _u8(0xD1) + encode_modrm(selector, dst)
            return (prefix + _u8(0xC1) + encode_modrm(selector, dst)
                    + _u8(count.value))
        if isinstance(count, RegOperand) and count.reg is Reg.ECX:
            return prefix + _u8(0xD3) + encode_modrm(selector, dst)
        raise EncodeError("shift count must be imm8 or CL")
    if op is Op.IMUL and len(ops) == 3:
        dst, src, imm = ops
        if _fits_i8(imm.value):
            return (prefix + _u8(0x6B) + encode_modrm(dst.reg, src)
                    + _i8(_signed(imm.value, 8) if imm.value > 0x7F
                          else _signed(imm.value)))
        return (prefix + _u8(0x69) + encode_modrm(dst.reg, src)
                + _imm_bytes(imm.value, instr.width))
    if op is Op.IMUL and len(ops) == 2:
        dst, src = ops
        return (prefix + _u8(TWO_BYTE_ESCAPE) + _u8(0xAF)
                + encode_modrm(dst.reg, src))
    if op in OP_TO_GROUP3 and len(ops) == 1:
        (dst,) = ops
        return prefix + _u8(0xF7) + encode_modrm(OP_TO_GROUP3[op], dst)

    # -- control transfer -------------------------------------------------
    if op is Op.JMP:
        if instr.target is not None:
            plen = len(prefix)
            use_short, rel = _branch_displacement(
                instr, addr, plen + 2, plen + 5, force_long_branch)
            if use_short:
                return prefix + _u8(0xEB) + _i8(rel)
            return prefix + _u8(0xE9) + _i32(rel)
        (dst,) = ops
        return prefix + _u8(0xFF) + encode_modrm(Group5.JMP, dst)
    if op is Op.JCC:
        plen = len(prefix)
        use_short, rel = _branch_displacement(
            instr, addr, plen + 2, plen + 6, force_long_branch)
        if use_short:
            return prefix + _u8(0x70 + instr.cond) + _i8(rel)
        return (prefix + _u8(TWO_BYTE_ESCAPE) + _u8(0x80 + instr.cond)
                + _i32(rel))
    if op in (Op.LOOP, Op.JECXZ):
        opcode = 0xE2 if op is Op.LOOP else 0xE3
        rel = instr.target - (addr + len(prefix) + 2)
        if not -128 <= rel <= 127:
            raise EncodeError(f"{op.value} target out of rel8 range")
        return prefix + _u8(opcode) + _i8(rel)
    if op is Op.CALL:
        if instr.target is not None:
            rel = instr.target - (addr + len(prefix) + 5)
            return prefix + _u8(0xE8) + _i32(rel)
        (dst,) = ops
        return prefix + _u8(0xFF) + encode_modrm(Group5.CALL, dst)
    if op is Op.RET:
        if ops:
            return prefix + _u8(0xC2) + _u16(ops[0].value)
        return prefix + _u8(0xC3)

    # -- string / misc -----------------------------------------------------
    if op is Op.MOVS:
        return prefix + _u8(0xA5)
    if op is Op.STOS:
        return prefix + _u8(0xAB)
    if op is Op.LODS:
        return prefix + _u8(0xAD)
    if op is Op.NOP:
        return prefix + _u8(0x90)
    if op is Op.HLT:
        return prefix + _u8(0xF4)
    if op is Op.CPUID:
        return prefix + _u8(TWO_BYTE_ESCAPE) + _u8(0xA2)
    if op is Op.INT:
        (vector,) = ops
        return prefix + _u8(0xCD) + _u8(vector.value)

    raise EncodeError(f"no encoding for {instr}")
