"""Architected machine state for x86lite.

This is the *precise state* that the co-designed VM must be able to
materialize at any architected instruction boundary (the paper's "precise
state mapping").  It holds exactly the software-visible resources: eight
GPRs, four flags, the instruction pointer, memory, and the tiny OS-service
surface (INT 0x80) that lets example programs produce output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.memory.address_space import AddressSpace
from repro.isa.x86lite.registers import GPR_COUNT, Reg

MASK32 = 0xFFFFFFFF


class ArchException(Exception):
    """An architected exception (e.g. #DE divide error, #UD invalid opcode).

    The VMM catches these during native execution and reconstructs precise
    x86lite state before delivering them (Fig. 1b's exception edge).
    """

    def __init__(self, kind: str, addr: int) -> None:
        super().__init__(f"{kind} at {addr:#x}")
        self.kind = kind
        self.addr = addr


@dataclass
class X86State:
    """Complete architected state of an x86lite machine."""

    memory: AddressSpace = field(default_factory=AddressSpace)
    regs: List[int] = field(default_factory=lambda: [0] * GPR_COUNT)
    eip: int = 0
    cf: bool = False
    zf: bool = False
    sf: bool = False
    of: bool = False
    halted: bool = False
    exit_code: Optional[int] = None
    #: Output produced through INT 0x80 services (ints and strings).
    output: List[object] = field(default_factory=list)

    # -- register access -----------------------------------------------------

    def get_reg(self, reg: Reg, width: int = 32) -> int:
        value = self.regs[reg]
        return value & 0xFFFF if width == 16 else value

    def set_reg(self, reg: Reg, value: int, width: int = 32) -> None:
        if width == 16:
            self.regs[reg] = (self.regs[reg] & 0xFFFF0000) | (value & 0xFFFF)
        else:
            self.regs[reg] = value & MASK32

    # -- flags ---------------------------------------------------------------

    def flags_tuple(self) -> "tuple[bool, bool, bool, bool]":
        return (self.cf, self.zf, self.sf, self.of)

    def set_flags(self, cf=None, zf=None, sf=None, of=None) -> None:
        if cf is not None:
            self.cf = bool(cf)
        if zf is not None:
            self.zf = bool(zf)
        if sf is not None:
            self.sf = bool(sf)
        if of is not None:
            self.of = bool(of)

    # -- stack ----------------------------------------------------------------

    def push(self, value: int, size: int = 4) -> None:
        esp = (self.regs[Reg.ESP] - size) & MASK32
        self.regs[Reg.ESP] = esp
        if size == 2:
            self.memory.write_u16(esp, value)
        else:
            self.memory.write_u32(esp, value)

    def pop(self, size: int = 4) -> int:
        esp = self.regs[Reg.ESP]
        value = (self.memory.read_u16(esp) if size == 2
                 else self.memory.read_u32(esp))
        self.regs[Reg.ESP] = (esp + size) & MASK32
        return value

    # -- comparison / copying ---------------------------------------------

    def arch_equal(self, other: "X86State") -> bool:
        """Architected-state equality (registers, flags, eip, halt status).

        Memory is compared by the differential test harness separately,
        over the address ranges the program touches.
        """
        return (self.regs == other.regs
                and self.flags_tuple() == other.flags_tuple()
                and self.eip == other.eip
                and self.halted == other.halted
                and self.exit_code == other.exit_code)

    def copy_architected(self, memory: Optional[AddressSpace] = None
                         ) -> "X86State":
        """Copy registers/flags/eip (sharing or replacing memory)."""
        clone = X86State(memory=memory if memory is not None
                         else self.memory)
        clone.regs = list(self.regs)
        clone.eip = self.eip
        clone.cf, clone.zf, clone.sf, clone.of = self.flags_tuple()
        clone.halted = self.halted
        clone.exit_code = self.exit_code
        clone.output = list(self.output)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regs = " ".join(f"{reg.name.lower()}={self.regs[reg]:#x}"
                        for reg in Reg)
        flags = "".join(name if value else name.lower()
                        for name, value in zip("CZSO", self.flags_tuple()))
        return f"<X86State eip={self.eip:#x} {regs} [{flags}]>"
