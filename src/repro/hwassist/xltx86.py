"""XLTx86 — the backend translation-assist functional unit (Table 1).

``XLTx86 Fdst, Fsrc``: decode the architected instruction aligned at the
start of the 128-bit Fsrc register and deposit its cracked micro-ops into
Fdst, setting the CSR status register:

* ``x86_ilen``    — byte length of the architected instruction
* ``uops_bytes``  — byte length of the generated micro-ops
* ``Flag_cmplx``  — instruction too complex for the hardware path
  (microcoded op, REP string, 16-bit-operand form, decode fault, or a
  cracked body that does not fit the 128-bit Fdst)
* ``Flag_cti``    — control-transfer instruction (branch handler needed)

Documented deviation from Fig. 6b: the paper packs the two byte counts in
4-bit fields; x86lite instructions and cracked bodies can be exactly 16
bytes, so our CSR uses 5-bit count fields (the HAloop masks change from
0x0F/0xF0 to 0x1F/0x3E0).  Nothing else shifts.

The unit is *the same hardware* as the software BBT's decode/crack step by
construction: both call :func:`repro.isa.x86lite.decode` and
:func:`repro.translator.cracker.crack`.  What the assist changes is cost —
4 pipeline cycles instead of ~70 of the 83 software-BBT cycles per
instruction (Section 5.3) — which the timing model accounts for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.isa.fusible.encoding import encode_stream
from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.registers import FREG_BYTES
from repro.isa.x86lite.decoder import DecodeError, decode
from repro.translator.cracker import crack

#: Execution latency of one XLTx86 invocation, in cycles (Section 4.2).
XLTX86_LATENCY = 4


@dataclass
class XLTx86Result:
    """Outcome of one XLTx86 invocation."""

    x86_ilen: int            # 0 when the bytes do not decode at all
    uop_byte_count: int
    flag_cmplx: bool
    flag_cti: bool
    uops: List[MicroOp]
    uop_bytes: bytes

    @property
    def uop_bytes_padded(self) -> bytes:
        """Fdst image: micro-op bytes zero-padded to 128 bits."""
        return self.uop_bytes + bytes(FREG_BYTES - len(self.uop_bytes))


class XLTx86Unit:
    """Functional model of the XLTx86 unit (one instruction wide)."""

    def __init__(self) -> None:
        self.invocations = 0
        self.complex_punts = 0
        self.cti_flags = 0

    def translate(self, fsrc: bytes, addr: int = 0) -> XLTx86Result:
        """Decode + crack the instruction at the start of ``fsrc``.

        ``addr`` is the architected address of the instruction (used to
        resolve branch targets; the real unit gets it from the streaming
        buffer's fetch address).
        """
        self.invocations += 1
        if len(fsrc) < FREG_BYTES:
            fsrc = fsrc + bytes(FREG_BYTES - len(fsrc))
        try:
            instr = decode(fsrc[:FREG_BYTES], addr=addr)
        except DecodeError:
            self.complex_punts += 1
            return XLTx86Result(0, 0, True, False, [], b"")

        result = crack(instr)
        if result.cmplx:
            self.complex_punts += 1
            if result.cti:
                self.cti_flags += 1
            return XLTx86Result(instr.length, 0, True, result.cti, [], b"")

        data = encode_stream(result.uops)
        if len(data) > FREG_BYTES:
            # cracked body does not fit the 128-bit Fdst: punt to software
            self.complex_punts += 1
            return XLTx86Result(instr.length, 0, True, result.cti, [], b"")
        if result.cti:
            self.cti_flags += 1
        return XLTx86Result(instr.length, len(data), False, result.cti,
                            result.uops, data)
