"""The hardware-accelerated BBT kernel loop — Fig. 6a, executable.

The paper shows the VMM's fast BBT inner loop in implementation-ISA
assembly: fetch 16 bytes of architected code into an F register, crack
them with ``XLTx86``, branch to software handlers on the CSR flags, store
the produced micro-ops to the code cache, and advance both pointers by
the lengths reported in the CSR.

This module builds that loop as *actual fusible micro-op code* and runs
it on the native machine model — the strongest fidelity statement the
repository makes about the backend assist: the translation loop itself is
native code using the new instruction.

Adaptation noted in :mod:`repro.hwassist.xltx86`: our CSR packs 5-bit
byte-count fields (x86lite instructions can be exactly 16 bytes), so the
Fig. 6a masks widen from ``0x0F/0xF0`` to ``0x1F/0x3E0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.isa.fusible.encoding import encode_stream
from repro.isa.fusible.machine import FusibleMachine
from repro.isa.fusible.microop import MicroOp
from repro.isa.fusible.opcodes import UOp
from repro.isa.fusible.registers import (
    R_CODE_PTR,
    R_SCRATCH0,
    R_SCRATCH1,
    R_X86_PC,
)

#: F registers used by the loop (Fsrc / Fdst of Table 1).
F_SRC = 1
F_DST = 2


def haloop_uops() -> List[MicroOp]:
    """The Fig. 6a kernel as a micro-op list (HALT exits for the demo).

    Layout (byte offsets)::

        +0   LDF    F1, 0(R30)      ; LD   Fsrc, [Rx86pc]
        +4   XLTX86 F2, F1          ; XLTx86 Fdst, Fsrc
        +8   JCSRC  -> complex      ; Jcpx complex_x86code
        +12  JCSRT  -> branch       ; Jcti branch_handler
        +16  STF    F2, 0(R28)      ; ST   Fdst, [Rcode$]
        +20  LDCSR  R16             ; MOV  Rt0, CSR
        +24  ANDI   R17, R16, 0x1F  ; AND  Rt1, Rt0, ilen mask
        +28  ADD    R30, R30, R17   ; ADD  Rx86pc, Rt1     (fused pair)
        +32  SHRI   R18, R16, 5     ; AND.x Rt2, Rt0, bytes mask ...
        +36  ANDI   R18, R18, 0x1F
        +40  ADD    R28, R28, R18   ; ADD  Rcode$, Rt2     (fused pair)
        +44  JMP    HAloop (-48)
        +48  HALT                   ; complex handler (demo: stop)
        +52  HALT                   ; branch handler  (demo: stop)
    """
    return [
        MicroOp(UOp.LDF, rd=F_SRC, rs1=R_X86_PC, imm=0),
        MicroOp(UOp.XLTX86, rd=F_DST, rs1=F_SRC),
        MicroOp(UOp.JCSRC, imm=36),   # +8 -> +48 (complex handler)
        MicroOp(UOp.JCSRT, imm=36),   # +12 -> +52 (branch handler)
        MicroOp(UOp.STF, rd=F_DST, rs1=R_CODE_PTR, imm=0),
        MicroOp(UOp.LDCSR, rd=R_SCRATCH0),
        MicroOp(UOp.ANDI, rd=R_SCRATCH1, rs1=R_SCRATCH0, imm=0x1F,
                fused=True),
        MicroOp(UOp.ADD, rd=R_X86_PC, rs1=R_X86_PC, rs2=R_SCRATCH1),
        MicroOp(UOp.SHRI, rd=R_SCRATCH1 + 1, rs1=R_SCRATCH0, imm=5),
        MicroOp(UOp.ANDI, rd=R_SCRATCH1 + 1, rs1=R_SCRATCH1 + 1,
                imm=0x1F, fused=True),
        MicroOp(UOp.ADD, rd=R_CODE_PTR, rs1=R_CODE_PTR,
                rs2=R_SCRATCH1 + 1),
        MicroOp(UOp.JMP, imm=-48),
        MicroOp(UOp.HALT),            # complex handler (demo)
        MicroOp(UOp.HALT),            # branch handler (demo)
    ]


@dataclass
class HALoopRun:
    """Outcome of running the HAloop over one basic block."""

    instructions_translated: int
    uop_bytes_emitted: int
    stopped_on: str               # 'cti' | 'complex'
    final_x86_pc: int
    uops_executed: int
    code_bytes: bytes


def run_haloop(machine: FusibleMachine, loop_addr: int, x86_pc: int,
               code_ptr: int, max_uops: int = 100_000) -> HALoopRun:
    """Install and run the HAloop natively until a CSR flag stops it.

    ``x86_pc`` points at architected code in the machine's memory;
    ``code_ptr`` is where translated micro-ops are deposited.
    """
    machine.memory.write(loop_addr, encode_stream(haloop_uops()))
    machine.regs[R_X86_PC] = x86_pc
    machine.regs[R_CODE_PTR] = code_ptr
    start_uops = machine.uops_executed
    event = machine.run(loop_addr, max_uops=max_uops)
    if event.kind != "halt":
        raise RuntimeError(f"unexpected HAloop exit: {event.kind}")
    stopped_on = "complex" if machine.csr_cmplx else "cti"
    emitted = machine.regs[R_CODE_PTR] - code_ptr
    return HALoopRun(
        instructions_translated=_count_instructions(machine, x86_pc),
        uop_bytes_emitted=emitted,
        stopped_on=stopped_on,
        final_x86_pc=machine.regs[R_X86_PC],
        uops_executed=machine.uops_executed - start_uops,
        code_bytes=machine.memory.read(code_ptr, max(emitted, 0)))


def _count_instructions(machine: FusibleMachine, start: int) -> int:
    """How many architected instructions the loop consumed."""
    from repro.isa.x86lite.decoder import decode_at
    count = 0
    pc = start
    while pc < machine.regs[R_X86_PC]:
        pc = decode_at(machine.memory, pc).next_addr
        count += 1
    return count
