"""Hardware hotspot detection — a Merten-style branch behavior buffer.

VM.fe executes cold code in x86-mode, so there is no BBT code to carry
software profiling counters.  Following the paper (and Merten et al.,
"An Architectural Framework for Runtime Optimization"), a small buffer
after the retire stage counts executions of branch-target addresses and
raises a hotspot event when a counter crosses the hot threshold.

The buffer has finite capacity with LRU-like replacement, which makes it
an *approximate* detector — a deliberate difference from the exact
software counters that the tests pin down.  It exposes the same
``record_entry`` / ``take_hot`` surface as
:class:`repro.vmm.profiling.SoftwareProfiler`, so the VMM runtime is
agnostic about which detector a configuration uses.
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from typing import List, Optional

log = logging.getLogger("repro.hwassist")

#: Entry count of the branch behavior buffer (Merten et al. used 4K).
DEFAULT_BBB_ENTRIES = 4096


class BranchBehaviorBuffer:
    """Finite-capacity execution-count table with replacement."""

    def __init__(self, hot_threshold: int,
                 entries: int = DEFAULT_BBB_ENTRIES) -> None:
        if entries < 1:
            raise ValueError("BBB needs at least one entry")
        self.hot_threshold = hot_threshold
        self.capacity = entries
        self._table: "OrderedDict[int, int]" = OrderedDict()
        self._hot_pending: List[int] = []
        self._hot_reported: set = set()
        self.replacements = 0

    def record_entry(self, block_addr: int, count: int = 1) -> None:
        """Count executions of a block entry (a retired branch target)."""
        if block_addr in self._table:
            self._table.move_to_end(block_addr)
            self._table[block_addr] += count
        else:
            if len(self._table) >= self.capacity:
                self._table.popitem(last=False)  # evict coldest-recent
                self.replacements += 1
            self._table[block_addr] = count
        if self._table[block_addr] >= self.hot_threshold and \
                block_addr not in self._hot_reported:
            self._hot_reported.add(block_addr)
            self._hot_pending.append(block_addr)
            log.debug("bbb: %#x crossed hot threshold %d",
                      block_addr, self.hot_threshold)

    def record_edge(self, source: int, target: int, count: int = 1) -> None:
        """Edges are not tracked in hardware; superblock formation in
        VM.fe falls back to static next-block heuristics."""

    def take_hot(self) -> Optional[int]:
        if self._hot_pending:
            return self._hot_pending.pop(0)
        return None

    def is_hot(self, block_addr: int) -> bool:
        return self._table.get(block_addr, 0) >= self.hot_threshold

    def forget(self, block_addr: int) -> None:
        self._table.pop(block_addr, None)
        self._hot_reported.discard(block_addr)

    def reset(self) -> None:
        self._table.clear()
        self._hot_pending.clear()
        self._hot_reported.clear()
        self.replacements = 0

    @property
    def occupancy(self) -> int:
        return len(self._table)
