"""Dual-mode (two-level) frontend decoder — Fig. 4/5 of the paper.

The two-level structure mirrors the Motorola 68000-style microcode split:

* **Level 1 (vertical)** cracks an architected x86lite instruction into
  fusible micro-ops — functionally identical to the software BBT's
  decode/crack step (both call the shared cracker).
* **Level 2 (horizontal)** expands micro-ops into pipeline control
  signals.  In this model that is the point where micro-ops enter the
  backend, so level 2 is represented by handing the micro-ops onward.

In *x86-mode* both levels run: the pipeline consumes architected code
directly from memory, with no translation and no code-cache footprint —
this is what gives VM.fe its conventional-processor startup curve.
In *native-mode* level 1 is bypassed (and can be powered off): translated
code from the code cache feeds level 2 directly.

The decoder tracks its own activity (cycles each level is powered), which
Fig. 11 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.isa.fusible.microop import MicroOp
from repro.isa.x86lite.decoder import DecodeError, decode
from repro.isa.x86lite.instruction import Instruction, \
    MAX_INSTRUCTION_LENGTH
from repro.translator.cracker import crack


@dataclass
class DecodedGroup:
    """Level-1 output for one architected instruction."""

    instr: Instruction
    uops: List[MicroOp]
    cmplx: bool          # microcoded path (VMM software assist)
    cti: bool


class DualModeDecoder:
    """Functional model of the dual-mode frontend decoder."""

    def __init__(self) -> None:
        self.x86_mode_instructions = 0
        self.native_mode_uops = 0
        self.complex_traps = 0

    def decode_x86(self, memory, addr: int) -> DecodedGroup:
        """x86-mode: run both decode levels on architected code."""
        window = memory.read(addr, MAX_INSTRUCTION_LENGTH)
        try:
            instr = decode(window, addr=addr)
        except DecodeError:
            raise
        self.x86_mode_instructions += 1
        result = crack(instr)
        if result.cmplx:
            self.complex_traps += 1
            return DecodedGroup(instr, [], True, result.cti)
        return DecodedGroup(instr, result.uops, False, result.cti)

    def pass_native(self, uops: List[MicroOp]) -> List[MicroOp]:
        """Native-mode: bypass level 1 entirely (it can be powered off)."""
        self.native_mode_uops += len(uops)
        return uops
