"""Hardware assists for binary translation (Section 4 of the paper).

* :mod:`~repro.hwassist.xltx86` — the backend functional unit behind the
  new ``XLTx86`` instruction (Table 1, Fig. 6/7): decode + crack one
  architected instruction per invocation.
* :mod:`~repro.hwassist.dual_mode_decoder` — the two-level frontend
  decoder (Fig. 4/5) that lets the pipeline execute raw x86 code directly.
* :mod:`~repro.hwassist.hotspot_detector` — a Merten-style branch behavior
  buffer for hardware hotspot detection (needed by VM.fe, where no BBT
  code exists to carry software profiling).
"""

from repro.hwassist.xltx86 import XLTX86_LATENCY, XLTx86Result, XLTx86Unit
from repro.hwassist.dual_mode_decoder import DualModeDecoder
from repro.hwassist.hotspot_detector import BranchBehaviorBuffer

__all__ = ["BranchBehaviorBuffer", "DualModeDecoder", "XLTX86_LATENCY",
           "XLTx86Result", "XLTx86Unit"]
