"""repro — reproduction of "Reducing Startup Time in Co-Designed Virtual
Machines" (Hu & Smith, ISCA 2006).

Two layers:

* a **functional co-designed VM** that really runs programs — an x86lite
  (IA-32-subset) front end over a fusible micro-op ISA, with staged
  BBT/SBT dynamic binary translation, code caches with chaining, macro-op
  fusion, and the paper's hardware assists (XLTx86, dual-mode decoders,
  a branch-behavior-buffer hotspot detector);
* a **timing layer** that reproduces the paper's startup study (Figs.
  2/3/8/9/10/11, Eqs. 1/2, Tables 1/2) at full 500M-instruction scale via
  event-driven simulation over synthetic Winstone2004 workload models.

Quick start::

    from repro import CoDesignedVM, assemble, vm_soft

    vm = CoDesignedVM(vm_soft(), hot_threshold=50)
    vm.load(assemble('''
    start:
        mov ecx, 100
    loop:
        add eax, ecx
        dec ecx
        jnz loop
        mov eax, 0
        mov ebx, 0
        int 0x80
    '''))
    report = vm.run()
    print(report.summary())
"""

from repro.core import (
    ALL_CONFIGS,
    CoDesignedVM,
    ExecutionReport,
    MachineConfig,
    VM_CONFIGS,
    interp_sbt,
    ref_superscalar,
    vm_be,
    vm_fe,
    vm_soft,
)
from repro.core.vm import run_program
from repro.isa.x86lite import assemble, assemble_to_bytes
from repro.timing import Scenario, simulate_startup
from repro.workloads import generate_workload, winstone_app, \
    winstone_suite

__version__ = "1.0.0"

__all__ = [
    "ALL_CONFIGS", "CoDesignedVM", "ExecutionReport", "MachineConfig",
    "Scenario", "VM_CONFIGS", "assemble", "assemble_to_bytes",
    "generate_workload", "interp_sbt", "ref_superscalar", "run_program",
    "simulate_startup", "vm_be", "vm_fe", "vm_soft", "winstone_app",
    "winstone_suite",
]
