"""Architected-ISA interpreter (decode-and-execute emulation)."""

from repro.interp.interpreter import Interpreter, InterpreterLimit

__all__ = ["Interpreter", "InterpreterLimit"]
