"""Decode-and-execute interpreter for x86lite.

Three roles, mirroring the paper:

1. Initial emulation engine for the *Interp + SBT* staged configuration
   (the strategy of Transmeta Crusoe / early DAISY, evaluated in Fig. 2).
2. Reference semantics for differential testing of every translation path.
3. Precise-state reconstruction: the VMM re-interprets from a block entry
   to an exception point to materialize exact architected state (Fig. 1b).

The interpreter optionally caches decoded instructions; the paper's
emulation-speed discussion (10–100x slower than native) refers to real
interpreters that re-dispatch per instruction, which our *timing* model
accounts for separately via cycles-per-instruction costs.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, Optional

from repro.isa.x86lite.decoder import decode
from repro.isa.x86lite.instruction import Instruction, MAX_INSTRUCTION_LENGTH
from repro.isa.x86lite.semantics import execute
from repro.isa.x86lite.state import X86State

log = logging.getLogger("repro.interp")


class InterpreterLimit(Exception):
    """Raised when a step budget is exhausted (runaway-program guard)."""


class Interpreter:
    """Instruction-at-a-time emulator for x86lite programs."""

    def __init__(self, state: X86State, cache_decodes: bool = True,
                 on_instruction: Optional[Callable[[Instruction], None]]
                 = None) -> None:
        self.state = state
        self.instructions_executed = 0
        self._cache_decodes = cache_decodes
        self._decode_cache: Dict[int, Instruction] = {}
        #: Observer invoked with each decoded instruction before execution;
        #: used by profiling and by the hardware hotspot-detector models.
        self.on_instruction = on_instruction

    def fetch_decode(self, addr: int) -> Instruction:
        """Fetch and decode the instruction at ``addr``."""
        if self._cache_decodes:
            cached = self._decode_cache.get(addr)
            if cached is not None:
                return cached
        window = self.state.memory.read(addr, MAX_INSTRUCTION_LENGTH)
        instr = decode(window, addr=addr)
        if self._cache_decodes:
            self._decode_cache[addr] = instr
        return instr

    def invalidate_decodes(self) -> None:
        """Drop cached decodes (after self-modifying-code writes)."""
        if self._decode_cache:
            log.debug("decode cache invalidated (%d entries)",
                      len(self._decode_cache))
        self._decode_cache.clear()

    def step(self) -> Instruction:
        """Execute one instruction; returns the decoded instruction."""
        instr = self.fetch_decode(self.state.eip)
        if self.on_instruction is not None:
            self.on_instruction(instr)
        execute(instr, self.state)
        self.instructions_executed += 1
        return instr

    def run(self, max_instructions: int = 10_000_000) -> int:
        """Run until HLT/exit; returns the number of instructions executed."""
        start = self.instructions_executed
        while not self.state.halted:
            if self.instructions_executed - start >= max_instructions:
                raise InterpreterLimit(
                    f"exceeded {max_instructions} instructions")
            self.step()
        return self.instructions_executed - start
