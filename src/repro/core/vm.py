"""CoDesignedVM — run x86lite programs under any machine configuration.

This is the primary entry point of the library::

    from repro import CoDesignedVM, assemble, vm_soft

    image = assemble(SOURCE)
    vm = CoDesignedVM(vm_soft(), hot_threshold=50)
    vm.load(image)
    report = vm.run()

The same program produces the same architected results under every
configuration (the cross-configuration tests enforce this); what differs
is *how* the work is done — interpretation, BBT translations, superblocks
with fused macro-ops — and therefore the startup cost profile that the
timing layer (:mod:`repro.timing`) models at scale.
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.core.config import MachineConfig, vm_soft
from repro.core.stats import ExecutionReport
from repro.hwassist.hotspot_detector import BranchBehaviorBuffer
from repro.hwassist.xltx86 import XLTx86Unit
from repro.interp.interpreter import Interpreter
from repro.isa.x86lite.registers import Reg
from repro.isa.x86lite.state import X86State
from repro.memory.address_space import AddressSpace
from repro.memory.loader import DEFAULT_STACK_TOP, Image, load_image
from repro.vmm.profiling import SoftwareProfiler
from repro.vmm.runtime import VMRuntime

log = logging.getLogger("repro.core")


class CoDesignedVM:
    """One machine instance: a configuration plus architected state."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 hot_threshold: Optional[int] = None) -> None:
        self.config = config if config is not None else vm_soft()
        if hot_threshold is not None:
            self.config = self.config.with_(hot_threshold=hot_threshold)
        self.state = X86State(memory=AddressSpace())
        self.state.regs[Reg.ESP] = DEFAULT_STACK_TOP
        self.runtime: Optional[VMRuntime] = None
        self.xlt_unit: Optional[XLTx86Unit] = None
        self._loaded = False
        self._image: Optional[Image] = None
        #: the repository last used for save/warm_start (stats surface)
        self._last_repository = None

    # -- setup ------------------------------------------------------------

    def load(self, image: Image) -> None:
        """Load a program image (scenario 1's disk-to-memory step)."""
        self._image = image
        self.state.eip = load_image(image, self.state.memory)
        self._loaded = True
        if self.config.is_vm:
            self.runtime = self._build_runtime()

    def restart(self, warm: bool = True) -> None:
        """Rewind the program for another run.

        ``warm=True`` models the paper's short-context-switch resume
        (scenario 3): architected state and program memory are reset,
        but the code caches, chains and profiling survive, so the second
        run needs no re-translation.  ``warm=False`` models a major
        context switch with evicted translations (scenario 2 again).
        """
        if not self._loaded:
            raise RuntimeError("no image loaded")
        registers = self.state.regs
        for index in range(len(registers)):
            registers[index] = 0
        registers[Reg.ESP] = DEFAULT_STACK_TOP
        self.state.cf = self.state.zf = False
        self.state.sf = self.state.of = False
        self.state.halted = False
        self.state.exit_code = None
        self.state.output.clear()
        # restore program text+data exactly (the previous run may have
        # written data segments); code caches live elsewhere
        self.state.eip = load_image(self._image, self.state.memory)
        if self.config.is_vm:
            if warm and self.runtime is not None:
                self.runtime.interp.invalidate_decodes()
            else:
                self.runtime = self._build_runtime()

    def _build_runtime(self) -> VMRuntime:
        config = self.config
        if config.hotspot_detector == "bbb":
            profiler = BranchBehaviorBuffer(config.hot_threshold)
        else:
            profiler = SoftwareProfiler(config.hot_threshold)
        runtime = VMRuntime(
            self.state,
            hot_threshold=config.hot_threshold,
            initial_emulation=config.initial_emulation,
            profiler=profiler,
            superblock_bias=config.superblock_bias,
            max_superblock_instrs=config.max_superblock_instrs,
            enable_fusion=config.enable_fusion,
            enable_chaining=config.enable_chaining,
            verify_translations=config.verify_translations,
            integrity_check_interval=config.integrity_check_interval,
            costs=config.costs,
            trace=config.trace)
        if config.mode == "be":
            # route the BBT's decode/crack step through the XLTx86 unit
            self.xlt_unit = XLTx86Unit()
            runtime.bbt.xlt_unit = self.xlt_unit
        return runtime

    # -- persistent translation cache --------------------------------------

    def _repository(self, repository):
        """Coerce paths to a local repository; pass repository objects
        (local or :class:`~repro.persist.RemoteRepository`) through.

        Remote repositories additionally get the run's tracer bound, so
        client-side retries/fallbacks land in this run's event stream
        and flight recorder.
        """
        from repro.persist import TranslationRepository
        if isinstance(repository, (str, bytes)) or \
                hasattr(repository, "__fspath__"):
            repository = TranslationRepository(repository)
        if hasattr(repository, "bind_tracer") and self.tracer is not None:
            repository.bind_tracer(self.tracer)
        return repository

    def save_translations(self, repository) -> int:
        """Snapshot the current code caches into an on-disk repository.

        ``repository`` is a path or a
        :class:`~repro.persist.TranslationRepository`.  Returns the
        number of newly written records.  Typically called after a cold
        run so the next :meth:`warm_start` boot pays no BBT/SBT cost for
        the blocks seen here.
        """
        from repro.persist import (capture_translations,
                                   config_fingerprint, image_fingerprint)
        if self.runtime is None or not self._loaded:
            raise RuntimeError("no VM runtime to snapshot "
                               "(load an image under a VM config first)")
        records = capture_translations(self.runtime.directory,
                                       self.state.memory)
        repo = self._repository(repository)
        self._last_repository = repo
        return repo.save(
            records, config_fingerprint(self.config),
            image_fingerprint(self._image), config_name=self.config.name)

    def warm_start(self, repository):
        """Re-materialize persisted translations into this VM's caches.

        Call after :meth:`load` and before :meth:`run`.  Every loaded
        translation is re-fingerprinted against the current program
        bytes and screened by the verifier rule-pack; stale or corrupt
        entries are dropped.  Returns the
        :class:`~repro.persist.LoadReport`.
        """
        from repro.persist import (WarmStartLoader, config_fingerprint,
                                   image_fingerprint)
        if self.runtime is None or not self._loaded:
            raise RuntimeError("load an image under a VM config before "
                               "warm-starting")
        repo = self._repository(repository)
        self._last_repository = repo
        config_fp = config_fingerprint(self.config)
        image_fp = image_fingerprint(self._image)
        records = repo.load(config_fp, image_fp)
        report = WarmStartLoader(self.runtime).load_records(records)
        log.info("warm start under %s: %d/%d record(s) loaded",
                 self.config.name, report.loaded, report.attempted)
        expected = repo.manifest_entry_count(config_fp, image_fp)
        if expected is not None and expected > len(records):
            report.missing_objects += expected - len(records)
        return report

    # -- observability --------------------------------------------------------

    @property
    def tracer(self):
        """The runtime's event tracer (None unless ``trace=True``)."""
        return self.runtime.tracer if self.runtime is not None else None

    @property
    def ledger(self):
        """The runtime's cycle-attribution ledger (None pre-load)."""
        return self.runtime.ledger if self.runtime is not None else None

    @property
    def metrics(self):
        """The runtime's metrics registry (None pre-load)."""
        return self.runtime.metrics if self.runtime is not None else None

    def export_trace(self, metadata: Optional[dict] = None) -> dict:
        """Perfetto-loadable trace of the last run (requires a config
        with ``trace=True``); includes the ledger's phase attribution."""
        from repro.obs.export import export_trace
        if self.runtime is None or self.runtime.tracer is None:
            raise RuntimeError(
                "tracing is not enabled; use a config with trace=True "
                "(e.g. vm_soft().with_(trace=True))")
        meta = {"config": self.config.name}
        meta.update(metadata or {})
        return export_trace(self.runtime.tracer, self.runtime.ledger,
                            metadata=meta)

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        """Full counter snapshot: runtime, warm-start and fault/recovery.

        Extends :meth:`VMRuntime.stats` with the warm-start loader's
        per-reason skip breakdown (``persist``: verifier-rejected,
        fingerprint-stale, corrupt/undecodable, missing, duplicate) so
        operational tooling can see exactly why records were
        quarantined at boot.  Returns ``{}`` for non-VM configurations
        or before an image is loaded.
        """
        if self.runtime is None:
            return {}
        stats = self.runtime.stats()
        report = self.runtime.persist_report
        stats["persist"] = report.to_dict() if report is not None else {}
        remote = getattr(self._last_repository, "remote_stats", None)
        if remote is not None:
            stats["remote"] = remote.to_dict()
        return stats

    # -- execution ------------------------------------------------------------

    def run(self, max_instructions: int = 10_000_000,
            max_uops: int = 50_000_000) -> ExecutionReport:
        """Run the loaded program to completion; returns a report."""
        if not self._loaded:
            raise RuntimeError("no image loaded")
        if not self.config.is_vm:
            interp = Interpreter(self.state)
            interp.run(max_instructions)
            return ExecutionReport(
                config_name=self.config.name,
                exit_code=self.state.exit_code,
                output=list(self.state.output),
                instructions_interpreted=interp.instructions_executed)

        runtime = self.runtime
        runtime.run(max_uops=max_uops)
        stats = runtime.stats()
        return ExecutionReport(
            config_name=self.config.name,
            exit_code=self.state.exit_code,
            output=list(self.state.output),
            instructions_interpreted=stats["instructions_interpreted"],
            uops_executed=stats["uops_executed"],
            fused_pairs_executed=stats["fused_pairs_seen"],
            blocks_translated=stats["blocks_translated"],
            superblocks_translated=stats["superblocks_translated"],
            bbt_instrs_translated=stats["bbt_instrs_translated"],
            sbt_instrs_translated=stats["sbt_instrs_translated"],
            pairs_fused=stats["pairs_fused"],
            chains_made=stats["chains_made"],
            vm_exits=stats["vm_exits"],
            interp_one_calls=stats["interp_one_calls"],
            profile_calls=stats["profile_calls"],
            bbt_flushes=stats["bbt_flushes"],
            sbt_flushes=stats["sbt_flushes"],
            translations_lost_in_flushes=stats[
                "translations_lost_in_flushes"],
            bbt_retranslations=stats["bbt_retranslations"],
            sbt_retranslations=stats["sbt_retranslations"],
            hotspot_retranslations=stats["hotspot_retranslations"],
            persist_loaded=stats["persist_loaded"],
            persist_dropped=stats["persist_dropped"],
            persist_chains_restored=stats["persist_chains_restored"],
            translation_faults=stats["translation_faults"],
            blocks_quarantined=stats["blocks_quarantined"],
            blocks_degraded=stats["blocks_degraded"],
            interpreted_fallback_instrs=stats[
                "interpreted_fallback_instrs"],
            integrity_faults_detected=stats["integrity_faults_detected"],
            integrity_retranslations=stats["integrity_retranslations"],
            hotspot_misfires=stats["hotspot_misfires"],
            total_cycles=stats["total_cycles"],
            phase_cycles=stats["phase_cycles"],
            xltx86_invocations=(self.xlt_unit.invocations
                                if self.xlt_unit else 0))


def run_program(source_or_image, config: Optional[MachineConfig] = None,
                hot_threshold: Optional[int] = None,
                max_instructions: int = 10_000_000) -> ExecutionReport:
    """Convenience one-shot: assemble (if needed), load, run."""
    from repro.isa.x86lite.assembler import assemble
    image = (assemble(source_or_image)
             if isinstance(source_or_image, str) else source_or_image)
    vm = CoDesignedVM(config, hot_threshold=hot_threshold)
    vm.load(image)
    return vm.run(max_instructions=max_instructions)
