"""Public facade of the co-designed VM (the paper's system under study).

:class:`~repro.core.vm.CoDesignedVM` runs x86lite programs under any of
the paper's machine configurations (Table 2): the reference superscalar,
VM.soft, VM.be, VM.fe — plus the Interp+SBT strategy of Fig. 2.
"""

from repro.core.config import (
    CacheConfig,
    MachineConfig,
    PipelineConfig,
    TranslationCosts,
    interp_sbt,
    ref_superscalar,
    vm_be,
    vm_fe,
    vm_soft,
    ALL_CONFIGS,
    VM_CONFIGS,
)
from repro.core.stats import ExecutionReport
from repro.core.vm import CoDesignedVM

__all__ = [
    "ALL_CONFIGS", "CacheConfig", "CoDesignedVM", "ExecutionReport",
    "MachineConfig", "PipelineConfig", "TranslationCosts", "VM_CONFIGS",
    "interp_sbt", "ref_superscalar", "vm_be", "vm_fe", "vm_soft",
]
