"""Machine configurations — Table 2 of the paper.

Four machine models share one microarchitecture substrate (ROB, issue
buffer, pipeline width, cache hierarchy) and differ in how cold and hot
x86 code is handled:

=============  ==========================  =================================
configuration  cold x86 code               hotspot x86 code
=============  ==========================  =================================
Ref            hardware x86 decoders       hardware x86 decoders (no opt)
VM.soft        software BBT (83 cyc/inst)  software SBT (fused macro-ops)
VM.be          BBT + XLTx86 (20 cyc/inst)  same SBT
VM.fe          dual-mode decoders (≈Ref)   same SBT
Interp+SBT     software interpreter        same SBT (threshold 25)
=============  ==========================  =================================

These dataclasses carry both the *functional* knobs (initial emulation
strategy, hot threshold, profiling source) and the *timing* constants
(per-instruction translation costs, latencies) consumed by
:mod:`repro.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

#: Hot threshold derived from Eq. 2 (Section 3.2): N = Δ_SBT/(p-1)
#: = 1200/0.15 = 8000.
DEFAULT_HOT_THRESHOLD = 8000

#: Hot threshold for the interpreter-based configuration (Section 3,
#: "derived using the method described in Section 3.2" with interpreter
#: emulation costs).
INTERP_HOT_THRESHOLD = 25


@dataclass(frozen=True)
class CacheConfig:
    """One cache level (sizes in bytes, latency in cycles)."""

    size: int
    assoc: int
    line_size: int
    latency: int

    @property
    def sets(self) -> int:
        return self.size // (self.assoc * self.line_size)


@dataclass(frozen=True)
class PipelineConfig:
    """Superscalar pipeline resources (Table 2)."""

    fetch_bytes: int = 16
    width: int = 3                    # decode/rename/issue/retire
    issue_queue_slots: int = 36
    rob_entries: int = 128
    load_queue_slots: int = 32
    store_queue_slots: int = 20
    physical_registers: int = 128
    #: extra frontend stages for hardware x86 decode (Ref and VM.fe carry
    #: the two-level decoders; VM.soft/VM.be fetch pre-decoded micro-ops)
    x86_decode_stages: int = 2


@dataclass(frozen=True)
class TranslationCosts:
    """Per-instruction translation costs (measured values from the paper).

    ``None`` disables the corresponding mechanism in a configuration.
    """

    #: BBT cycles per x86 instruction (83 software / 20 with XLTx86).
    bbt_cycles_per_instr: Optional[float] = None
    #: BBT native instructions per x86 instruction (Δ_BBT = 105).
    bbt_native_instrs_per_instr: float = 105.0
    #: SBT overhead per hot x86 instruction (Δ_SBT = 1674 native instrs;
    #: ~1500 cycles at the VMM's own IPC).
    sbt_cycles_per_instr: Optional[float] = 1500.0
    sbt_native_instrs_per_instr: float = 1674.0
    #: Interpreter cycles per x86 instruction (10x-100x slower than
    #: native; 45 sits in the middle of the paper's range and calibrates
    #: Fig. 2's interpretation curve).
    interp_cycles_per_instr: Optional[float] = None
    #: XLTx86 latency in cycles (Section 4.2).
    xltx86_latency: int = 4
    #: Warm-start load cost per persisted x86 instruction: deserialize,
    #: re-encode at the new native address and screen with the verifier
    #: — one linear pass over the micro-ops, roughly an order of
    #: magnitude cheaper than software BBT translation (83 cyc/instr).
    persist_load_cycles_per_instr: float = 12.0


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine configuration."""

    name: str
    #: 'ref' | 'soft' | 'be' | 'fe' | 'interp'
    mode: str
    #: 'native' (Ref), 'bbt', 'interp', or 'x86-mode' (dual-mode decoder)
    initial_emulation: str
    hot_threshold: int = DEFAULT_HOT_THRESHOLD
    #: hotspot detection: 'software' (embedded in BBT code), 'bbb'
    #: (hardware branch behavior buffer), or 'none'
    hotspot_detector: str = "software"
    costs: TranslationCosts = field(default_factory=TranslationCosts)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    l1i: CacheConfig = CacheConfig(64 * 1024, 2, 64, 2)
    l1d: CacheConfig = CacheConfig(64 * 1024, 8, 64, 3)
    l2: CacheConfig = CacheConfig(2 * 1024 * 1024, 8, 64, 12)
    memory_latency: int = 168
    #: superblock formation parameters
    superblock_bias: float = 0.6
    max_superblock_instrs: int = 200
    enable_fusion: bool = True
    enable_chaining: bool = True
    #: debug mode: statically verify every translation at install time
    #: (see :mod:`repro.verify`); raises TranslationVerifyError on the
    #: first invariant violation
    verify_translations: bool = False
    #: sweep the code caches for corrupted translations every N
    #: dispatches, evicting and re-translating on checksum mismatch
    #: (0 = off; armed by chaos runs — see :mod:`repro.faults` and
    #: ``docs/robustness.md``)
    integrity_check_interval: int = 0
    #: record lifecycle events + the flight-recorder ring (see
    #: :mod:`repro.obs` and ``docs/observability.md``); off by default —
    #: disabled tracing costs one pointer test per hook site.  Excluded
    #: from the persistence fingerprint: traced and untraced runs share
    #: warm-start repositories.
    trace: bool = False
    #: steady-state IPC advantage of fused macro-op execution over the
    #: reference superscalar (Section 2: +8% on Winstone, +18% SPECint;
    #: per-application values live in the workload models)
    steady_state_speedup: float = 1.08

    @property
    def is_vm(self) -> bool:
        return self.mode != "ref"

    @property
    def uses_bbt(self) -> bool:
        return self.initial_emulation == "bbt"

    def with_(self, **overrides) -> "MachineConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


def ref_superscalar() -> MachineConfig:
    """The conventional superscalar reference (hardware x86 decoders)."""
    return MachineConfig(
        name="Ref: superscalar", mode="ref", initial_emulation="native",
        hotspot_detector="none",
        costs=TranslationCosts(bbt_cycles_per_instr=None,
                               sbt_cycles_per_instr=None))


def vm_soft() -> MachineConfig:
    """Software-only co-designed VM (BBT 83 cycles/instr)."""
    return MachineConfig(
        name="VM.soft", mode="soft", initial_emulation="bbt",
        costs=TranslationCosts(bbt_cycles_per_instr=83.0))


def vm_be() -> MachineConfig:
    """Co-designed VM with the XLTx86 backend unit (BBT 20 cycles/instr)."""
    return MachineConfig(
        name="VM.be", mode="be", initial_emulation="bbt",
        costs=TranslationCosts(bbt_cycles_per_instr=20.0))


def vm_fe() -> MachineConfig:
    """Co-designed VM with dual-mode frontend decoders (no BBT at all)."""
    return MachineConfig(
        name="VM.fe", mode="fe", initial_emulation="x86-mode",
        hotspot_detector="bbb",
        costs=TranslationCosts(bbt_cycles_per_instr=None))


def interp_sbt() -> MachineConfig:
    """Interpretation followed by SBT (the Fig. 2 comparison strategy)."""
    return MachineConfig(
        name="VM: Interp & SBT", mode="interp",
        initial_emulation="interp",
        hot_threshold=INTERP_HOT_THRESHOLD,
        costs=TranslationCosts(bbt_cycles_per_instr=None,
                               interp_cycles_per_instr=45.0))


def VM_CONFIGS() -> Dict[str, MachineConfig]:
    """The three co-designed VM configurations of Fig. 8/9."""
    return {"VM.soft": vm_soft(), "VM.be": vm_be(), "VM.fe": vm_fe()}


def ALL_CONFIGS() -> Dict[str, MachineConfig]:
    """Every simulated configuration, keyed by display name."""
    configs = {"Ref: superscalar": ref_superscalar()}
    configs.update(VM_CONFIGS())
    configs["VM: Interp & SBT"] = interp_sbt()
    return configs
