"""Execution reports for functional VM runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: ExecutionReport field -> (metrics-registry series name, labels).
#: Every report field backed by the runtime's registry appears here;
#: ``tests/test_metrics.py`` asserts the two surfaces agree field by
#: field after a mixed BBT/SBT/fault run, so they can never silently
#: diverge (the registry is the single source of truth — see
#: :mod:`repro.obs.metrics`).
REPORT_METRICS: Dict[str, tuple] = {
    "instructions_interpreted": ("instructions_interpreted", {}),
    "uops_executed": ("uops_executed", {}),
    "fused_pairs_executed": ("fused_pairs_seen", {}),
    "blocks_translated": ("blocks_translated", {}),
    "superblocks_translated": ("superblocks_translated", {}),
    "bbt_instrs_translated": ("bbt_instrs_translated", {}),
    "sbt_instrs_translated": ("sbt_instrs_translated", {}),
    "pairs_fused": ("pairs_fused", {}),
    "chains_made": ("chains_made", {}),
    "vm_exits": ("vm_exits", {}),
    "interp_one_calls": ("interp_one_calls", {}),
    "profile_calls": ("profile_calls", {}),
    "bbt_flushes": ("code_cache_flushes", {"cache": "bbt"}),
    "sbt_flushes": ("code_cache_flushes", {"cache": "sbt"}),
    "xltx86_invocations": ("xltx86_invocations", {}),
    "translations_lost_in_flushes":
        ("translations_lost_in_flushes", {}),
    "bbt_retranslations": ("bbt_retranslations", {}),
    "sbt_retranslations": ("sbt_retranslations", {}),
    "hotspot_retranslations": ("hotspot_retranslations", {}),
    "persist_loaded": ("persist_loaded", {}),
    "persist_dropped": ("persist_dropped", {}),
    "persist_chains_restored": ("persist_chains_restored", {}),
    "translation_faults": ("translation_faults", {}),
    "blocks_quarantined": ("blocks_quarantined", {}),
    "blocks_degraded": ("blocks_degraded", {}),
    "interpreted_fallback_instrs": ("interpreted_fallback_instrs", {}),
    "integrity_faults_detected": ("integrity_faults_detected", {}),
    "integrity_retranslations": ("integrity_retranslations", {}),
    "hotspot_misfires": ("hotspot_misfires", {}),
    "total_cycles": ("sim_cycles_total", {}),
}


@dataclass
class ExecutionReport:
    """Outcome of running one program under one machine configuration."""

    config_name: str
    exit_code: Optional[int]
    output: List[object] = field(default_factory=list)
    #: instructions executed through the interpreter (all of them for the
    #: reference configuration; cold/complex-instruction counts for VMs)
    instructions_interpreted: int = 0
    #: micro-ops executed natively out of the code caches
    uops_executed: int = 0
    fused_pairs_executed: int = 0
    blocks_translated: int = 0
    superblocks_translated: int = 0
    bbt_instrs_translated: int = 0
    sbt_instrs_translated: int = 0
    pairs_fused: int = 0
    chains_made: int = 0
    vm_exits: int = 0
    interp_one_calls: int = 0
    profile_calls: int = 0
    bbt_flushes: int = 0
    sbt_flushes: int = 0
    xltx86_invocations: int = 0
    #: code-cache pressure: translations evicted by wholesale flushes and
    #: the work repeated afterwards (the numbers the persistent
    #: translation cache exists to drive down)
    translations_lost_in_flushes: int = 0
    bbt_retranslations: int = 0
    sbt_retranslations: int = 0
    hotspot_retranslations: int = 0
    #: warm-start outcome (persistent translation cache; 0s = cold boot)
    persist_loaded: int = 0
    persist_dropped: int = 0
    persist_chains_restored: int = 0
    #: fault / recovery counters (all 0 on a healthy run): translator
    #: failures absorbed by the quarantine, blocks degraded to permanent
    #: interpretation, and code-cache corruptions healed by the
    #: integrity sweep (see docs/robustness.md)
    translation_faults: int = 0
    blocks_quarantined: int = 0
    blocks_degraded: int = 0
    interpreted_fallback_instrs: int = 0
    integrity_faults_detected: int = 0
    integrity_retranslations: int = 0
    hotspot_misfires: int = 0
    #: simulated-cycle attribution from the runtime's ledger (every
    #: cycle in exactly one Eq. 1 phase; ``sum(phase_cycles.values())
    #: == total_cycles`` by construction — see :mod:`repro.obs.ledger`)
    total_cycles: float = 0.0
    phase_cycles: Dict[str, float] = field(default_factory=dict)

    @property
    def fused_uop_fraction(self) -> float:
        """Fraction of dynamic micro-ops that executed inside fused pairs
        (the paper reports 49% for Winstone, 57% for SPECint steady
        state)."""
        if not self.uops_executed:
            return 0.0
        return 2.0 * self.fused_pairs_executed / self.uops_executed

    def summary(self) -> str:
        lines = [f"=== {self.config_name} ===",
                 f"exit code:            {self.exit_code}",
                 *([f"simulated cycles:     {self.total_cycles:.0f}"]
                   if self.total_cycles else []),
                 f"interpreted instrs:   {self.instructions_interpreted}",
                 f"native micro-ops:     {self.uops_executed}",
                 f"fused pair fraction:  {self.fused_uop_fraction:.1%}",
                 f"BBT blocks:           {self.blocks_translated}",
                 f"SBT superblocks:      {self.superblocks_translated}",
                 f"chains made:          {self.chains_made}",
                 f"VM exits:             {self.vm_exits}",
                 f"cache flushes:        {self.bbt_flushes} bbt / "
                 f"{self.sbt_flushes} sbt",
                 f"translations lost:    "
                 f"{self.translations_lost_in_flushes}",
                 f"re-translations:      {self.bbt_retranslations} bbt / "
                 f"{self.hotspot_retranslations} hotspot"]
        if self.persist_loaded or self.persist_dropped:
            lines.append(f"warm-start loads:     {self.persist_loaded} "
                         f"({self.persist_dropped} dropped, "
                         f"{self.persist_chains_restored} chains "
                         f"restored)")
        if self.translation_faults or self.blocks_degraded or \
                self.blocks_quarantined:
            lines.append(f"translator faults:    "
                         f"{self.translation_faults} "
                         f"({self.blocks_quarantined} quarantined, "
                         f"{self.blocks_degraded} degraded to interp, "
                         f"{self.interpreted_fallback_instrs} fallback "
                         f"instrs)")
        if self.integrity_faults_detected:
            lines.append(f"cache corruptions:    "
                         f"{self.integrity_faults_detected} healed "
                         f"({self.integrity_retranslations} "
                         f"retranslated)")
        if self.hotspot_misfires:
            lines.append(f"hotspot misfires:     {self.hotspot_misfires} "
                         f"absorbed")
        if self.xltx86_invocations:
            lines.append(f"XLTx86 invocations:   {self.xltx86_invocations}")
        return "\n".join(lines)
