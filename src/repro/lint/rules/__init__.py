"""The reprolint rule packs — importing registers every rule.

Project-invariant packs (severity ``error``):

* :mod:`repro.lint.rules.determinism` — DET001-003
* :mod:`repro.lint.rules.concurrency` — CONC001-002
* :mod:`repro.lint.rules.faultcover` — FLT001
* :mod:`repro.lint.rules.observability` — OBS001-002
* :mod:`repro.lint.rules.exceptions` — EXC001
* :mod:`repro.lint.rules.timeouts` — TMO001

Style pack (severity ``warning``, the old ``tools/minilint.py``):

* :mod:`repro.lint.rules.style` — F401, E501, W291, W191
"""

from repro.lint.rules import concurrency  # noqa: F401
from repro.lint.rules import determinism  # noqa: F401
from repro.lint.rules import exceptions  # noqa: F401
from repro.lint.rules import faultcover  # noqa: F401
from repro.lint.rules import observability  # noqa: F401
from repro.lint.rules import style  # noqa: F401
from repro.lint.rules import timeouts  # noqa: F401
from repro.lint.rules.style import STYLE_RULE_IDS

__all__ = ["STYLE_RULE_IDS"]
