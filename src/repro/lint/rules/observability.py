"""OBS001-003 — taxonomy conformance for events, counters and spans.

The observability plane is registry-driven by design: the tracer
rejects event names outside :data:`repro.obs.tracer.EVENT_TYPES` *at
emit time*, and every VM statistic is a
:func:`~repro.obs.metrics.metric_field` descriptor backed by the
metrics registry.  Both properties are enforced dynamically — which
means a typo'd event name on a cold error path, or a counter added as
a plain attribute, survives until that path happens to execute.  These
rules move the check to lint time.

**OBS001** — every literal event name passed to a tracer ``instant`` /
``complete`` call must exist in ``EVENT_TYPES`` (resolved from the live
module, so adding an event to the taxonomy automatically legalizes its
emit sites).  Dynamic names (forwarder shims like
``CacheServer._trace``) are skipped — the runtime check still covers
them.

**OBS002** — in a class that declares ``metric_field`` descriptors, an
instance attribute initialized to ``0`` in ``__init__`` and incremented
with ``+=`` elsewhere but *not* declared as a ``metric_field`` is a
shadow counter: it bypasses the registry, so ``stats()`` and the
metrics plane diverge — exactly the bug class PR 4 eliminated.
Private pacing state (``self._dispatches_since_sweep``) is exempt by
the underscore convention.

**OBS003** — spans opened from a propagated trace context
(:meth:`repro.obs.telemetry.SpanBuffer.span`) must (a) use a name
registered in ``EVENT_TYPES`` with the slice (``"X"``) phase — span
records become ``server.op`` slices in the merged fleet trace, and an
unregistered name would raise at open time on whatever request first
carries a context — and (b) be opened as a ``with``-statement context
manager.  A bare ``.span(...)`` call never runs the generator body, so
nothing is recorded and the span silently leaks out of the buffer;
the close-on-all-paths guarantee (including the exception path, which
stamps ``status: "error"``) only holds inside ``with``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set

from repro.lint.core import Rule, Violation, register_rule
from repro.lint.index import ModuleInfo, ProjectIndex
from repro.lint.rules.common import call_target, iter_calls, \
    literal_str_arg, self_attr

_EMIT_METHODS = {"instant", "complete"}


@register_rule
class EventTaxonomyRule(Rule):
    rule_id = "OBS001"
    title = "tracer emit of an unregistered event name"
    rationale = ("an event name outside EVENT_TYPES raises at emit "
                 "time — on whatever cold path finally reaches it")

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        if not module.package:
            return
        known = index.event_types
        if known is None:       # registry unresolvable: skip silently
            return
        for call in iter_calls(module.tree):
            receiver, func = call_target(call)
            if func not in _EMIT_METHODS or receiver is None:
                continue
            name = literal_str_arg(call)
            if name is None:
                continue        # dynamic forwarder: runtime-checked
            if name not in known:
                yield self.violation(
                    module, call.lineno,
                    f"event {name!r} is not in EVENT_TYPES "
                    f"(repro.obs.tracer); this emit will raise at "
                    f"runtime")


@register_rule
class ShadowCounterRule(Rule):
    rule_id = "OBS002"
    title = "counter bypasses the metrics registry"
    rationale = ("a zero-initialized, incremented attribute that is "
                 "not a metric_field splits the stats surfaces the "
                 "registry was built to unify")

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        if not module.package:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: ModuleInfo,
                     cls: ast.ClassDef) -> Iterable[Violation]:
        declared = self._declared_metric_fields(cls)
        if not declared:
            return              # class is not on the metrics plane
        zero_init: Dict[str, int] = {}
        incremented: Dict[str, int] = {}
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(item):
                if item.name == "__init__" \
                        and isinstance(node, ast.Assign) \
                        and isinstance(node.value, ast.Constant) \
                        and node.value.value == 0:
                    for target in node.targets:
                        attr = self_attr(target)
                        if attr is not None:
                            zero_init.setdefault(attr, node.lineno)
                elif isinstance(node, ast.AugAssign) \
                        and isinstance(node.op, ast.Add):
                    attr = self_attr(node.target)
                    if attr is not None:
                        incremented.setdefault(attr, node.lineno)
        for attr in sorted(set(zero_init) & set(incremented)):
            if attr in declared or attr.startswith("_"):
                continue
            yield self.violation(
                module, incremented[attr],
                f"{cls.name}.{attr} is a shadow counter (0-initialized "
                f"and incremented) that bypasses the metrics registry; "
                f"declare it as a metric_field")

    @staticmethod
    def _declared_metric_fields(cls: ast.ClassDef) -> Set[str]:
        declared: Set[str] = set()
        for node in cls.body:
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Call) \
                    and call_target(node.value)[1] == "metric_field":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        declared.add(target.id)
        return declared


@register_rule
class SpanDisciplineRule(Rule):
    rule_id = "OBS003"
    title = "propagated-context span misuse"
    rationale = ("a span opened outside 'with' never closes (its "
                 "record is lost on every path), and a name outside "
                 "the EVENT_TYPES slice taxonomy raises at open time")

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        if not module.package:
            return
        known = index.event_phases
        with_items = {
            id(item.context_expr)
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        for call in iter_calls(module.tree):
            receiver, func = call_target(call)
            if func != "span" or receiver is None:
                continue
            name = literal_str_arg(call)
            if name is not None and known is not None \
                    and known.get(name) != "X":
                yield self.violation(
                    module, call.lineno,
                    f"span name {name!r} is not a slice ('X') event in "
                    f"EVENT_TYPES (repro.obs.tracer); opening it will "
                    f"raise at runtime")
            if id(call) not in with_items:
                yield self.violation(
                    module, call.lineno,
                    f"span opened outside a 'with' statement leaks: "
                    f"the record is never closed or buffered on any "
                    f"path (use 'with ....span(...) as span:')")
