"""FLT001 — fault-point coverage of risky I/O in production paths.

The chaos gate's promise — "no fault changes architected results" — is
only as strong as the fault plane's coverage: a real-system failure
mode (disk write, fsync, rename, socket connect) with no
``fault_point(...)`` in front of it is a path the chaos matrix has
never exercised and the recovery code has never been forced to absorb.

Three checks, all cross-checked against the live fault-class registry
(:data:`repro.faults.classes.FAULT_CLASSES`), never a hardcoded list:

* every risky call (``open``, ``os.open``, ``os.replace``,
  ``os.rename``, ``os.fsync``, ``socket.socket``, ``.connect``) in a
  production ``persist``/``cacheserver``/``cluster`` function must be
  *dominated* by a ``fault_point`` call earlier in the same function;
* every ``fault_point("<site>")`` literal anywhere in the package must
  name a site some registered fault class listens on (else the call is
  dead weight that injects nothing);
* every registered site must appear as a literal somewhere in the
  scanned tree (else that fault class silently tests nothing —
  ``tools/chaos.py`` fails fast on the same drift).

Dominance is approximated lexically (an earlier ``fault_point`` in the
same function body); intentional exemptions — the lease protocol, whose
contention is injected at ``net.lease`` instead, and fsck, which runs
with injection disarmed because it *is* the repair path — carry inline
suppressions with their justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.lint.core import Rule, Violation, register_rule
from repro.lint.index import ModuleInfo, ProjectIndex
from repro.lint.rules.common import call_target, iter_calls, \
    literal_str_arg, module_imports

#: Production packages whose I/O must sit behind the fault plane.
_SCOPE = ("persist", "cacheserver", "cluster")

_OS_RISKY = {"open", "replace", "rename", "fsync"}


def _risky_reason(call: ast.Call, os_aliases, socket_aliases
                  ) -> Optional[str]:
    receiver, func = call_target(call)
    if receiver is None and func == "open":
        return "open()"
    if receiver in os_aliases and func in _OS_RISKY:
        return f"os.{func}()"
    if receiver in socket_aliases and func == "socket":
        return "socket.socket()"
    if func == "connect" and receiver is not None \
            and receiver not in os_aliases:
        return f"{receiver}.connect()"
    return None


@register_rule
class FaultCoverageRule(Rule):
    rule_id = "FLT001"
    title = "risky I/O call with no dominating fault_point"
    rationale = ("an I/O call the injector cannot reach is a failure "
                 "mode the chaos gate has never proven survivable")

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        if not module.package:
            return
        registered = index.fault_sites
        # direction 1: fault_point literals must name registered sites
        # (package-wide, not just persist/cacheserver)
        if registered is not None:
            for call in iter_calls(module.tree):
                if call_target(call)[1] != "fault_point":
                    continue
                site = literal_str_arg(call)
                if site is not None and site not in registered:
                    yield self.violation(
                        module, call.lineno,
                        f"fault_point site {site!r} is not listed by "
                        f"any registered fault class (repro.faults."
                        f"classes); it injects nothing")
        # direction 2: risky calls need a dominating fault_point
        if not module.in_package(*_SCOPE):
            return
        aliases, _ = module_imports(module.tree)
        os_aliases = {local for local, mod in aliases.items()
                      if mod == "os"}
        socket_aliases = {local for local, mod in aliases.items()
                          if mod == "socket"}
        for func in self._functions(module.tree):
            guards = [call.lineno for call in iter_calls(func)
                      if call_target(call)[1] == "fault_point"]
            first_guard = min(guards) if guards else None
            for call in iter_calls(func):
                reason = _risky_reason(call, os_aliases,
                                       socket_aliases)
                if reason is None:
                    continue
                if first_guard is None or call.lineno < first_guard:
                    yield self.violation(
                        module, call.lineno,
                        f"{reason} in {func.name} has no dominating "
                        f"fault_point(...); the chaos gate cannot "
                        f"exercise this failure path")

    @staticmethod
    def _functions(tree: ast.AST) -> List[ast.AST]:
        return [node for node in ast.walk(tree)
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))]

    def check_project(self,
                      index: ProjectIndex) -> Iterable[Violation]:
        """Direction 3: registered sites that nothing in the scanned
        tree visits (registry drift — also the chaos.py preflight)."""
        registered = index.fault_sites
        if registered is None or not any(
                module.package for module in index.modules):
            return
        literals = index.fault_point_literals()
        # only meaningful when the scan actually covers the package's
        # production paths (a partial scan would false-positive)
        scanned = {module.package[0] for module in index.modules
                   if module.package}
        if not {"persist", "translator", "vmm"} <= scanned:
            return
        anchors = self._anchor(index)
        for site in sorted(registered - literals):
            path, line = anchors.get(site, ("repro/faults/classes.py",
                                            0))
            yield Violation(
                rule_id=self.rule_id, severity=self.severity,
                path=path, line=line,
                message=(f"registered fault site {site!r} has no "
                         f"fault_point({site!r}) call in the tree; "
                         f"the fault class listening on it tests "
                         f"nothing"))

    @staticmethod
    def _anchor(index: ProjectIndex):
        """Best-effort source anchor per site: the ``sites = (...)``
        tuple entry in the scanned fault-class module."""
        anchors = {}
        for module in index.modules:
            if module.tree is None \
                    or not module.in_package("faults"):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Assign) \
                        and any(isinstance(t, ast.Name)
                                and t.id == "sites"
                                for t in node.targets):
                    for element in ast.walk(node.value):
                        if isinstance(element, ast.Constant) \
                                and isinstance(element.value, str):
                            anchors.setdefault(
                                element.value,
                                (module.rel, node.lineno))
        return anchors
