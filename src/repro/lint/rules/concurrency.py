"""CONC001-002 — lock discipline in the threaded cache server.

The cache server is the only genuinely concurrent component: a
``ThreadingMixIn`` handler thread per connection, all funnelling into
shared ``ServerStats`` counters and one repository writer lease.  Its
race-freedom is asserted dynamically by ``tests/test_cacheserver.py``'s
hammer test, but a hammer only catches what it happens to interleave —
these rules make the discipline checkable on every edit.

**CONC001** — in any ``cacheserver`` class that owns a
``threading.Lock``-style attribute, read-modify-write touches of shared
instance state (``self.x += 1``, ``self.d[k] = v``,
``setattr(self, ...)``) outside ``with self.<lock>`` are violations.
Plain rebinds (``self._server = None``) are exempt: the lifecycle
methods run single-threaded before serving starts, and a rebind is
atomic under the GIL where an RMW is not.

**CONC002** — lock *acquisition order* must be globally consistent
across ``cacheserver`` and ``persist``: if one code path takes lock A
then lock B (directly, or by calling a function that takes B), no other
path may take B then A, or two handler threads can deadlock.  The
analysis is name-based with one level of call resolution — exactly
enough to see ``_op_push``'s ``_push_lock -> writer lease`` ordering.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.core import Rule, Violation, register_rule
from repro.lint.index import ModuleInfo, ProjectIndex
from repro.lint.rules.common import call_target, lock_attrs_of_class, \
    self_attr

_SCOPE = ("cacheserver",)
_ORDER_SCOPE = ("cacheserver", "persist")


@register_rule
class UnguardedSharedStateRule(Rule):
    rule_id = "CONC001"
    title = "shared-state RMW outside the owning lock"
    rationale = ("handler threads share these objects; an unguarded "
                 "increment or dict store loses updates under "
                 "interleaving")

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        if not module.in_package(*_SCOPE):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: ModuleInfo,
                     cls: ast.ClassDef) -> Iterable[Violation]:
        locks = lock_attrs_of_class(cls)
        if not locks:
            return
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue    # construction happens-before sharing
            yield from self._check_method(module, cls, item, locks)

    def _check_method(self, module, cls, method,
                      locks: Set[str]) -> Iterable[Violation]:
        def walk(node: ast.AST, guarded: bool) -> Iterable[Violation]:
            if isinstance(node, ast.With):
                holds = guarded or any(
                    self_attr(item.context_expr) in locks
                    for item in node.items)
                for child in node.body:
                    yield from walk(child, holds)
                return
            if not guarded:
                yield from self._check_node(module, cls, method, node,
                                            locks)
            for child in ast.iter_child_nodes(node):
                yield from walk(child, guarded)

        for statement in method.body:
            yield from walk(statement, False)

    def _check_node(self, module, cls, method, node,
                    locks) -> Iterable[Violation]:
        where = f"{cls.name}.{method.name}"
        targets = []
        if isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Assign):
            # plain rebinds of self.<attr> are exempt; only container
            # stores (self.d[k] = v) are read-modify-write hazards
            targets = [t for t in node.targets
                       if isinstance(t, ast.Subscript)]
        for target in targets:
            if isinstance(target, ast.Subscript):
                attr = self_attr(target.value)
                if attr is not None and attr not in locks:
                    yield self.violation(
                        module, node.lineno,
                        f"store into shared container "
                        f"self.{attr}[...] in {where} outside "
                        f"`with self.<lock>`")
            else:
                attr = self_attr(target)
                if attr is not None and attr not in locks:
                    yield self.violation(
                        module, node.lineno,
                        f"read-modify-write of shared self.{attr} in "
                        f"{where} outside `with self.<lock>`")
        if isinstance(node, ast.Call):
            receiver, func = call_target(node)
            if func == "setattr" and receiver is None and node.args \
                    and isinstance(node.args[0], ast.Name) \
                    and node.args[0].id == "self":
                yield self.violation(
                    module, node.lineno,
                    f"setattr(self, ...) in {where} outside "
                    f"`with self.<lock>`")


def _lock_label(expr: ast.AST) -> Optional[str]:
    """Textual identity of a lock-ish with-context / acquire target."""
    attr = self_attr(expr)
    name = None
    if attr is not None:
        name = attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Call):
        _, called = call_target(expr)
        if "lease" in called.lower():
            return "writer.lease"
        return None
    if name is None:
        return None
    lowered = name.lower()
    if "lease" in lowered:
        return "writer.lease"
    if "lock" in lowered:
        return name
    return None


@register_rule
class LockOrderRule(Rule):
    rule_id = "CONC002"
    title = "inconsistent lock-acquisition order"
    rationale = ("two paths taking the same pair of locks in opposite "
                 "orders can deadlock a handler thread against a "
                 "writer; one global order, always")

    def check_project(self,
                      index: ProjectIndex) -> Iterable[Violation]:
        # pass 1: locks each function acquires directly, by bare name
        direct: Dict[str, Set[str]] = {}
        functions: List[Tuple[ModuleInfo, ast.AST]] = []
        for module in index.modules:
            if module.tree is None \
                    or not module.in_package(*_ORDER_SCOPE):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    functions.append((module, node))
                    direct.setdefault(node.name, set()).update(
                        self._direct_locks(node))
        # pass 2: ordered pairs (held A, then acquire B)
        pairs: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for module, func in functions:
            for held, inner, lineno in self._ordered_pairs(func,
                                                           direct):
                pairs.setdefault((held, inner), (module.rel, lineno))
        for (first, second), (path, lineno) in sorted(pairs.items()):
            reverse = pairs.get((second, first))
            if reverse is not None and (first, second) < (second, first):
                rpath, rline = reverse
                yield Violation(
                    rule_id=self.rule_id, severity=self.severity,
                    path=path, line=lineno,
                    message=(f"lock order conflict: {first!r} -> "
                             f"{second!r} here but {second!r} -> "
                             f"{first!r} at {rpath}:{rline}"))

    @staticmethod
    def _direct_locks(func: ast.AST) -> Set[str]:
        found: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.With):
                for item in node.items:
                    label = _lock_label(item.context_expr)
                    if label:
                        found.add(label)
            elif isinstance(node, ast.Call):
                receiver, called = call_target(node)
                if called == "acquire" and receiver is not None:
                    lowered = receiver.lower()
                    if "lease" in lowered:
                        found.add("writer.lease")
                    elif "lock" in lowered:
                        found.add(receiver)
        return found

    def _ordered_pairs(self, func: ast.AST,
                       direct: Dict[str, Set[str]]):
        """(held, acquired, line) triples for one function body."""

        def walk(node: ast.AST, held: List[str]):
            if isinstance(node, ast.With):
                labels = [label for label in
                          (_lock_label(item.context_expr)
                           for item in node.items) if label]
                for label in labels:
                    for outer in held:
                        if outer != label:
                            yield (outer, label, node.lineno)
                inner_held = held + labels
                for child in node.body:
                    yield from walk(child, inner_held)
                return
            if isinstance(node, ast.Call) and held:
                _, called = call_target(node)
                for inner in direct.get(called, ()):
                    for outer in held:
                        if outer != inner:
                            yield (outer, inner, node.lineno)
            for child in ast.iter_child_nodes(node):
                yield from walk(child, held)

        for statement in getattr(func, "body", []):
            yield from walk(statement, [])
