"""TMO001 — request-path timeouts must derive from the deadline budget.

Deadline propagation (docs/overload.md) only bounds work if every
socket and request timeout on the client/server path is computed from
the request's remaining :class:`~repro.persist.deadline.Deadline`
budget — ``min(self.timeout, deadline.remaining())`` — rather than a
hardcoded number.  A literal ``settimeout(2.0)`` deep in the stack is
a latent overrun: a request can keep burning socket time after its
budget is spent, so "no response accepted past its deadline" silently
degrades into "usually".

Two checks:

* in the production ``persist``/``cacheserver``/``cluster`` packages,
  ``settimeout(...)`` calls and ``timeout=`` keywords on the
  request-path call names (``settimeout``, ``create_connection``,
  ``request``/``_request``/``_attempt``) must not pass a bare numeric
  literal — derive the value from the propagated deadline (or a config
  attribute clamped by it).  Constructor config knobs
  (``RemoteRepository(timeout=2.0)``) and lock waits
  (``Condition.wait_for(timeout=...)``, ``lease.acquire(timeout=...)``)
  are deliberately out of scope: they are capacity configuration, not
  per-request I/O bounds.
* project-wide, the ``overload.*`` fault-point sites are cross-checked
  against the live fault-class registry in both directions (the FLT001
  idiom, scoped to the overload plane): an ``overload.*`` literal no
  class listens on injects nothing, and a registered ``overload.*``
  site never visited is a shed/deadline/hedge path the chaos gate has
  stopped exercising.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.core import Rule, Violation, register_rule
from repro.lint.index import ModuleInfo, ProjectIndex
from repro.lint.rules.common import call_target, iter_calls, \
    literal_str_arg

#: Packages whose request paths carry propagated deadlines.
_SCOPE = ("persist", "cacheserver", "cluster")

#: Call names whose ``timeout=`` keyword is a per-request I/O bound
#: (lock/condition waits and constructor config knobs are excluded).
_TIMEOUT_CALLS = frozenset({"settimeout", "create_connection",
                            "request", "_request", "_attempt"})


def _numeric_literal(node: ast.AST) -> Optional[float]:
    """The numeric value when ``node`` is a bare number literal
    (booleans excluded), else None."""
    if isinstance(node, ast.Constant) \
            and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    return None


@register_rule
class DeadlineTimeoutRule(Rule):
    rule_id = "TMO001"
    title = "request-path timeout hardcoded instead of deadline-derived"
    rationale = ("a literal socket/request timeout ignores the "
                 "propagated deadline budget, so work keeps running "
                 "after the request has already been abandoned")

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        if not module.in_package(*_SCOPE):
            return
        for call in iter_calls(module.tree):
            _, func = call_target(call)
            if func == "settimeout" and call.args:
                value = _numeric_literal(call.args[0])
                if value is not None:
                    yield self.violation(
                        module, call.lineno,
                        f"settimeout({value!r}) hardcodes a socket "
                        f"timeout; derive it from the propagated "
                        f"deadline budget (min(self.timeout, "
                        f"deadline.remaining()))")
            if func not in _TIMEOUT_CALLS:
                continue
            for keyword in call.keywords:
                if keyword.arg != "timeout":
                    continue
                value = _numeric_literal(keyword.value)
                if value is not None:
                    yield self.violation(
                        module, call.lineno,
                        f"{func}(timeout={value!r}) hardcodes a "
                        f"request timeout; derive it from the "
                        f"propagated deadline budget")

    def check_project(self,
                      index: ProjectIndex) -> Iterable[Violation]:
        """Overload fault-plane drift, both directions (FLT001 idiom
        scoped to ``overload.*`` sites)."""
        registered = index.fault_sites
        if registered is None:
            return
        scanned = {module.package[0] for module in index.modules
                   if module.package}
        if not {"persist", "cluster"} <= scanned:
            return          # partial scan would false-positive
        overload_sites = {site for site in registered
                          if site.startswith("overload.")}
        visited = {}
        for module in index.modules:
            if module.tree is None:
                continue
            for call in iter_calls(module.tree):
                if call_target(call)[1] != "fault_point":
                    continue
                site = literal_str_arg(call)
                if site is None or not site.startswith("overload."):
                    continue
                visited.setdefault(site, (module.rel, call.lineno))
                if site not in overload_sites:
                    yield Violation(
                        rule_id=self.rule_id, severity=self.severity,
                        path=module.rel, line=call.lineno,
                        message=(f"overload fault site {site!r} is "
                                 f"not listed by any registered fault "
                                 f"class; the drill injects nothing"))
        for site in sorted(overload_sites - set(visited)):
            yield Violation(
                rule_id=self.rule_id, severity=self.severity,
                path="repro/faults/classes.py", line=0,
                message=(f"registered overload fault site {site!r} "
                         f"has no fault_point({site!r}) call in the "
                         f"tree; its shed/deadline/hedge drill tests "
                         f"nothing"))
