"""The style pack — ``tools/minilint.py`` folded into reprolint.

Approximates the ruff surface configured in ``pyproject.toml`` with
zero dependencies, under ruff's rule IDs so the two ``make lint``
branches speak the same language: unused imports (F401), overlong
lines (E501, 99 columns), trailing whitespace (W291) and tab
indentation (W191).  Syntax errors surface as E999 from the engine.

Unlike the project-invariant rules these apply to *every* scanned file
(tests and tools included) and carry ``warning`` severity — they still
fail the lint run, but JSON consumers can tell style from invariants.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.lint.core import WARNING, Rule, Violation, register_rule
from repro.lint.index import ModuleInfo, ProjectIndex

MAX_LINE = 99


def _import_bindings(tree: ast.AST) -> List[Tuple[int, str]]:
    """(line, bound name) for every import binding in the module."""
    bindings: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                bindings.append((node.lineno, name))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name
                bindings.append((node.lineno, name))
    return bindings


@register_rule
class UnusedImportRule(Rule):
    rule_id = "F401"
    severity = WARNING
    title = "imported but unused"
    rationale = "dead imports hide real dependencies"

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        # __init__ modules import things to re-export them
        if Path(module.path).name == "__init__.py":
            return
        source = module.source
        for lineno, name in _import_bindings(module.tree):
            if name.startswith("_"):
                continue
            # textual use count is deliberately forgiving: occurrences
            # in string annotations, docstrings or comments all count
            # as uses, so anything reported here really is dead
            uses = len(re.findall(rf"\b{re.escape(name)}\b", source))
            imports = len(re.findall(
                rf"^\s*(?:from\s+\S+\s+)?import\b.*\b{re.escape(name)}\b",
                source, re.MULTILINE))
            if uses <= imports:
                yield self.violation(module, lineno,
                                     f"'{name}' imported but unused")


@register_rule
class LineLengthRule(Rule):
    rule_id = "E501"
    severity = WARNING
    title = "line too long"
    rationale = "the repo reads at 99 columns everywhere"

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        for lineno, line in enumerate(module.lines, start=1):
            if len(line) > MAX_LINE:
                yield self.violation(
                    module, lineno,
                    f"line too long ({len(line)} > {MAX_LINE})")


@register_rule
class TrailingWhitespaceRule(Rule):
    rule_id = "W291"
    severity = WARNING
    title = "trailing whitespace"
    rationale = "trailing whitespace churns diffs"

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        for lineno, line in enumerate(module.lines, start=1):
            if line != line.rstrip():
                yield self.violation(module, lineno,
                                     "trailing whitespace")


@register_rule
class TabIndentRule(Rule):
    rule_id = "W191"
    severity = WARNING
    title = "tab indentation"
    rationale = "the tree indents with spaces"

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        for lineno, line in enumerate(module.lines, start=1):
            if line.lstrip(" ").startswith("\t"):
                yield self.violation(module, lineno, "tab indentation")


#: rule IDs the ``--no-style`` CLI switch drops (ruff covers these)
STYLE_RULE_IDS = ("F401", "E501", "W291", "W191")
