"""Shared AST helpers for the reprolint rule packs."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple


def module_imports(tree: ast.AST) -> Tuple[Dict[str, str],
                                           Dict[str, Tuple[str, str]]]:
    """(module aliases, from-import bindings) for one module.

    Returns ``({local name: module}, {local name: (module, original)})``
    — e.g. ``import time as t`` gives ``{"t": "time"}`` and
    ``from time import monotonic as mono`` gives
    ``{"mono": ("time", "monotonic")}``.
    """
    aliases: Dict[str, str] = {}
    members: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                aliases[local] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                members[alias.asname or alias.name] = (node.module,
                                                       alias.name)
    return aliases, members


def call_target(call: ast.Call) -> Tuple[Optional[str], str]:
    """(receiver name or None, called attribute/function name).

    ``time.monotonic()`` -> ("time", "monotonic"); ``open()`` ->
    (None, "open"); ``self.tracer.instant()`` -> ("tracer", "instant").
    """
    func = call.func
    if isinstance(func, ast.Name):
        return None, func.id
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            return value.id, func.attr
        if isinstance(value, ast.Attribute):
            return value.attr, func.attr
        return "", func.attr
    return None, ""


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def literal_str_arg(call: ast.Call, position: int = 0) -> Optional[str]:
    if len(call.args) > position:
        node = call.args[position]
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
    return None


def iter_functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def self_attr(node: ast.AST) -> Optional[str]:
    """Attribute name when ``node`` is ``self.<name>``, else None."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def lock_attrs_of_class(cls: ast.ClassDef) -> Set[str]:
    """``self.<attr>`` names bound to ``threading.Lock()``-style
    primitives anywhere in the class body."""
    kinds = {"Lock", "RLock", "Condition", "Semaphore",
             "BoundedSemaphore"}
    found: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        _, called = call_target(node.value)
        if called not in kinds:
            continue
        for target in node.targets:
            attr = self_attr(target)
            if attr is not None:
                found.add(attr)
    return found
