"""DET001-003 — determinism: no wall-clock or global-RNG entropy.

The headline reproducibility guarantees (byte-identical traces, seeded
chaos replays, cycle-ledger conservation) all rest on one property: the
only clock in simulated-cycle code is the cycle ledger and the only
randomness is a seeded generator threaded in explicitly.  One stray
``time.time()`` timestamp or ``random.random()`` draw breaks replay in
a way no test notices until the traces stop matching.

Wall-clock-legitimate sites are allowlisted by module: the writer lease
(``persist/lease.py``) *is* a wall-clock protocol (TTLs, steal
deadlines), the remote client (``persist/remote.py``) takes real socket
deadlines and an injectable ``clock``/``sleep`` pair whose defaults are
the real ones, the CLI's ``serve`` loop sleeps for real, the cache
server (``cacheserver/server.py``) times request handling for its
latency histograms, and the fleet engine (``fleet/engine.py``) stamps
herd wall-time into its non-canonical ops section (every canonical
fleet measurement stays on the simulated-cycle clock).  Anything else
needs an inline justification.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.lint.core import Rule, Violation, register_rule
from repro.lint.index import ModuleInfo, ProjectIndex
from repro.lint.rules.common import call_target, iter_calls, \
    module_imports

#: Modules where wall-clock use is the domain, not a leak.
WALL_CLOCK_ALLOWED = {
    "persist.lease",        # lease TTL / expiry / steal deadlines
    "persist.remote",       # socket deadlines; injectable clock+sleep
    "cli",                  # interactive `repro serve` sleep loop
    "cacheserver.server",   # per-op latency histograms (wall-clock by
                            # nature; excluded from canonical reports)
    "fleet.engine",         # herd wall-time in the non-canonical ops
                            # section; all measurements are sim-cycle
    "cluster.client",       # default sleep/clock for retry backoff,
                            # injectable exactly like persist.remote
}

_WALL_CLOCK_FUNCS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
}

_DATETIME_FUNCS = {"now", "utcnow", "today", "fromtimestamp"}

_GLOBAL_RNG_FUNCS = {
    "random", "randrange", "randint", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "getrandbits", "seed", "triangular", "betavariate", "vonmisesvariate",
}


def _in_scope(module: ModuleInfo, allow: Set[str]) -> bool:
    if not module.package:          # tests/tools: not simulated code
        return False
    return ".".join(module.package) not in allow


class _DeterminismRule(Rule):
    """Shared scaffolding: resolve import aliases, scan calls."""

    allow: Set[str] = WALL_CLOCK_ALLOWED

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        if not _in_scope(module, self.allow):
            return
        aliases, members = module_imports(module.tree)
        for call in iter_calls(module.tree):
            yield from self.check_call(module, call, aliases, members)

    def check_call(self, module, call, aliases, members):
        return ()


@register_rule
class WallClockRule(_DeterminismRule):
    rule_id = "DET001"
    title = "wall-clock call in simulated-cycle code"
    rationale = ("simulated time comes from the cycle ledger; a "
                 "time.time()/monotonic()/sleep() call makes runs "
                 "diverge between hosts and replays")

    def check_call(self, module, call, aliases, members):
        receiver, func = call_target(call)
        hit = None
        if receiver is not None and aliases.get(receiver) == "time" \
                and func in _WALL_CLOCK_FUNCS:
            hit = f"time.{func}"
        elif receiver is None and members.get(func, ("",))[0] == "time":
            original = members[func][1]
            if original in _WALL_CLOCK_FUNCS:
                hit = f"time.{original}"
        if hit:
            yield self.violation(
                module, call.lineno,
                f"{hit}() in simulated-cycle module "
                f"{'.'.join(module.package)} (use the cycle ledger / "
                f"an injected clock)")


@register_rule
class DatetimeRule(_DeterminismRule):
    rule_id = "DET002"
    title = "datetime.now()-style call in simulated-cycle code"
    rationale = ("datetime.now()/utcnow()/today() stamp host time into "
                 "results that must be byte-identical across runs")

    def check_call(self, module, call, aliases, members):
        receiver, func = call_target(call)
        if func not in _DATETIME_FUNCS or receiver is None:
            return
        # `import datetime; datetime.datetime.now()` / `datetime.now()`
        # / `from datetime import datetime, date; datetime.now()`
        from_module = members.get(receiver, ("",))[0]
        if aliases.get(receiver) == "datetime" \
                or receiver in ("datetime", "date") \
                and (from_module == "datetime" or receiver == "datetime"):
            yield self.violation(
                module, call.lineno,
                f"datetime wall-clock call {receiver}.{func}() in "
                f"simulated-cycle module {'.'.join(module.package)}")


@register_rule
class GlobalRandomRule(_DeterminismRule):
    rule_id = "DET003"
    title = "unseeded / global RNG use"
    rationale = ("all randomness must flow through a seeded "
                 "random.Random(seed) instance so (seed, faults) "
                 "replays identically; the module-level RNG is shared "
                 "mutable global state")

    # the global RNG is banned everywhere in the package, even the
    # wall-clock-allowlisted modules: jitter must be deterministic too
    allow: Set[str] = set()

    def check_call(self, module, call, aliases, members):
        receiver, func = call_target(call)
        where = ".".join(module.package)
        if receiver is not None and aliases.get(receiver) == "random":
            if func in _GLOBAL_RNG_FUNCS:
                yield self.violation(
                    module, call.lineno,
                    f"module-level random.{func}() in {where} (use a "
                    f"seeded random.Random instance)")
            elif func == "Random" and not call.args:
                yield self.violation(
                    module, call.lineno,
                    f"unseeded random.Random() in {where} (pass an "
                    f"explicit seed)")
            elif func == "SystemRandom":
                yield self.violation(
                    module, call.lineno,
                    f"random.SystemRandom() in {where} draws OS "
                    f"entropy; never reproducible")
        elif receiver is None and func in members:
            from_module, original = members[func]
            if from_module == "random" and original in _GLOBAL_RNG_FUNCS:
                yield self.violation(
                    module, call.lineno,
                    f"module-level random.{original}() in {where} "
                    f"(use a seeded random.Random instance)")
            elif from_module == "random" and original == "Random" \
                    and not call.args:
                yield self.violation(
                    module, call.lineno,
                    f"unseeded random.Random() in {where} (pass an "
                    f"explicit seed)")
