"""EXC001 — no silent broad exception handlers in degradation paths.

The stack degrades on purpose — a failed save saves nothing, a dead
server falls back to the local store — but *silent* degradation is how
real incidents become unexplainable: the self-healing design
(``docs/robustness.md``) requires every absorbed failure to leave a
trace (a logger call or a flight-recorder dump).

A handler for bare ``except:``, ``except Exception`` or ``except
BaseException`` is flagged unless it does at least one of:

* **re-raise** (``raise`` anywhere in the body);
* **use the exception** — bind it (``as error``) and pass it to
  something (a log call, ``_fall_back``, a flight dump, an error
  frame);
* **log explicitly** — call ``log.warning``/``.exception``/... or
  ``flight_dump`` in the body.

Narrow handlers (``except OSError: pass``) are out of scope: catching
a *specific* exception and moving on is a statement about that
exception, while a broad catch-and-ignore can hide anything, including
the bugs the chaos gate exists to surface.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.core import Rule, Violation, register_rule
from repro.lint.index import ModuleInfo, ProjectIndex
from repro.lint.rules.common import call_target

_BROAD = {"Exception", "BaseException"}
_LOG_METHODS = {"debug", "info", "warning", "error", "exception",
                "critical", "log", "flight_dump"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    names = [node] if not isinstance(node, ast.Tuple) else node.elts
    for name in names:
        if isinstance(name, ast.Name) and name.id in _BROAD:
            return True
        if isinstance(name, ast.Attribute) and name.attr in _BROAD:
            return True
    return False


@register_rule
class SilentBroadExceptRule(Rule):
    rule_id = "EXC001"
    title = "broad except swallows the exception silently"
    rationale = ("degradation must be observable: absorb the failure, "
                 "but log it or hand it to the flight recorder")

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        if not module.package:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and _is_broad(node):
                if not self._handled_loudly(node):
                    caught = "bare except" if node.type is None else \
                        "broad except"
                    yield self.violation(
                        module, node.lineno,
                        f"{caught} handler neither re-raises, logs, "
                        f"nor uses the exception; silent degradation "
                        f"is undiagnosable")

    @staticmethod
    def _handled_loudly(handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in ast.walk(ast.Module(body=handler.body,
                                        type_ignores=[])):
            if isinstance(node, ast.Raise):
                return True
            if bound and isinstance(node, ast.Name) \
                    and node.id == bound \
                    and isinstance(node.ctx, ast.Load):
                return True     # exception handed to *something*
            if isinstance(node, ast.Call):
                receiver, func = call_target(node)
                if func in _LOG_METHODS and receiver is not None:
                    return True
        return False
