"""``repro lint`` — the reprolint command-line front end.

Also reachable as the ``make lint`` fallback (full run: invariants +
style) and the ``make verify`` gate (``--strict``: the baseline escape
hatch is disabled, so only inline-justified suppressions pass).
``tools/minilint.py`` delegates here with ``--style-only`` for
backwards compatibility.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

#: default baseline location, resolved relative to the working tree
BASELINE_NAME = ".reprolint-baseline.json"

DEFAULT_PATHS = ("src", "tests", "tools")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to lint (default: "
                             "src tests tools, where present)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable report")
    parser.add_argument("--strict", action="store_true",
                        help="ignore the baseline file: legacy "
                             "violations fail too (the `make verify` "
                             "gate)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule IDs to run "
                             "(default: all)")
    parser.add_argument("--no-style", action="store_true",
                        help="skip the style pack (F401/E501/W191/"
                             "W291) — for running next to ruff")
    parser.add_argument("--style-only", action="store_true",
                        help="run only the style pack (the old "
                             "tools/minilint.py surface)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: "
                             f"{BASELINE_NAME} if present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept every current violation into the "
                             "baseline file and exit clean")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")


def _selected_rules(args) -> Optional[List[str]]:
    from repro.lint import all_rule_ids
    from repro.lint.rules import STYLE_RULE_IDS
    if args.rules:
        return [rid.strip() for rid in args.rules.split(",")
                if rid.strip()]
    if args.style_only:
        return list(STYLE_RULE_IDS)
    if args.no_style:
        return [rid for rid in all_rule_ids()
                if rid not in STYLE_RULE_IDS]
    return None     # all registered rules


def _default_paths() -> List[str]:
    present = [path for path in DEFAULT_PATHS if Path(path).is_dir()]
    if present:
        return present
    # fall back to linting the installed package itself
    import repro
    return [str(Path(repro.__file__).parent)]


def run_lint(args: argparse.Namespace) -> int:
    from repro.lint import RULES, LintEngine
    from repro.lint.core import load_baseline, write_baseline

    if args.list_rules:
        width = max(len(rid) for rid in RULES)
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            print(f"{rule_id:<{width}}  [{rule.severity:7s}] "
                  f"{rule.title}")
        return 0

    paths = args.paths or _default_paths()
    baseline_path = args.baseline or BASELINE_NAME
    baseline = {} if args.strict \
        else load_baseline(baseline_path)
    try:
        engine = LintEngine(rules=_selected_rules(args),
                            baseline=baseline)
    except ValueError as error:
        raise SystemExit(str(error))
    report = engine.lint_paths(paths)

    if args.write_baseline:
        write_baseline(baseline_path, report.violations)
        print(f"baselined {len(report.violations)} violation(s) "
              f"into {baseline_path}")
        return 0

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for violation in report.violations:
            print(violation.format())
        summary = report.format().splitlines()[-1]
        if args.strict:
            summary += " [strict]"
        print(summary, file=sys.stderr)
    return 0 if report.ok else 1
