"""Module and registry index shared by every reprolint rule.

The engine parses each file once into a :class:`ModuleInfo` (source,
AST, package path, suppression table) and builds one
:class:`ProjectIndex` over the whole run.  The index resolves the
project registries the cross-check rules compare against:

* **event taxonomy** — :data:`repro.obs.tracer.EVENT_TYPES` (OBS001);
* **fault sites** — the union of ``sites`` over
  :data:`repro.faults.classes.FAULT_CLASSES` (FLT001);
* **fault-point call sites** — every ``fault_point("<site>")`` literal
  found in the scanned tree (FLT001's drift direction, and the
  ``tools/chaos.py`` fail-fast check).

Registries are resolved by importing the live modules — the same
objects the runtime enforces with — never from hardcoded lists; tests
inject substitute registries through the :class:`ProjectIndex`
constructor instead.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: ``# reprolint: disable=RULE1,RULE2`` — suppress on this line only.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")
#: ``# reprolint: disable-file=RULE`` — suppress for the whole file.
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*reprolint:\s*disable-file=([A-Za-z0-9_,\s]+)")


def _split_ids(blob: str) -> Set[str]:
    return {part.strip() for part in blob.split(",") if part.strip()}


class ModuleInfo:
    """One parsed source file plus everything rules ask about it."""

    def __init__(self, path, source: str) -> None:
        self.path = str(path)
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: Optional[ast.AST] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=self.path)
        except SyntaxError as error:
            self.syntax_error = error
        self.package: Tuple[str, ...] = self._package_of(self.path)
        self.line_suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        self._scan_suppressions()

    @staticmethod
    def _package_of(path: str) -> Tuple[str, ...]:
        """Dotted location inside the ``repro`` package, or ``()``.

        ``src/repro/persist/lease.py`` -> ``("persist", "lease")``;
        files outside the package (tests, tools) map to ``()`` so
        project-invariant rules skip them.
        """
        parts = Path(path).parts
        if "repro" not in parts:
            return ()
        inside = parts[len(parts) - parts[::-1].index("repro"):]
        if not inside:
            return ()
        return tuple(inside[:-1]) + (Path(inside[-1]).stem,)

    @property
    def rel(self) -> str:
        """Stable display path (``repro/...`` when inside the package)."""
        if self.package:
            return "repro/" + "/".join(self.package[:-1]
                                       + (self.package[-1] + ".py",))
        return self.path

    def in_package(self, *names: str) -> bool:
        """Whether the module lives under one of the given subpackages
        of ``repro`` (``in_package("persist", "cacheserver")``)."""
        return bool(self.package) and self.package[0] in names

    # -- suppressions ---------------------------------------------------------

    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_FILE_RE.search(line)
            if match:
                self.file_suppressions |= _split_ids(match.group(1))
                continue
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            ids = _split_ids(match.group(1))
            self.line_suppressions.setdefault(lineno, set()).update(ids)
            # a suppression on a comment-only line also covers the next
            # code line, so justifications can sit above the statement
            if line.lstrip().startswith("#"):
                target = self._next_code_line(lineno)
                if target is not None:
                    self.line_suppressions.setdefault(
                        target, set()).update(ids)

    def _next_code_line(self, after: int) -> Optional[int]:
        for lineno in range(after + 1, len(self.lines) + 1):
            stripped = self.lines[lineno - 1].strip()
            if stripped and not stripped.startswith("#"):
                return lineno
        return None

    def suppressed(self, rule_id: str, lineno: int) -> bool:
        if rule_id in self.file_suppressions:
            return True
        return rule_id in self.line_suppressions.get(lineno, set())


def _iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _call_name(call: ast.Call) -> str:
    """Bare name of the called object (``fault_point``, ``open``...)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _literal_first_arg(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        return call.args[0].value
    return None


class ProjectIndex:
    """Whole-run context: parsed modules plus the project registries."""

    def __init__(self, modules: Optional[List[ModuleInfo]] = None,
                 event_types: Optional[Set[str]] = None,
                 fault_sites: Optional[Set[str]] = None) -> None:
        self.modules: List[ModuleInfo] = list(modules or [])
        self._event_types = event_types
        self._fault_sites = fault_sites
        self._fault_point_calls: Optional[
            List[Tuple[ModuleInfo, int, Optional[str]]]] = None

    # -- registries (source of truth: the live modules) -----------------------

    @property
    def event_types(self) -> Optional[Set[str]]:
        """Registered tracer event names, or None if unresolvable."""
        if self._event_types is None:
            self._event_types = _import_event_types()
        return self._event_types

    @property
    def event_phases(self):
        """Registered event name → Perfetto phase ('X'/'i') mapping,
        or None if unresolvable.  Always live-imported (tests inject
        names through ``event_types``; phase checks want the real
        taxonomy, which injection could only weaken)."""
        try:
            from repro.obs.tracer import EVENT_TYPES
        except ImportError:     # pragma: no cover - always importable
            return None
        return dict(EVENT_TYPES)

    @property
    def fault_sites(self) -> Optional[Set[str]]:
        """Registered fault-point site strings, or None."""
        if self._fault_sites is None:
            self._fault_sites = _import_fault_sites()
        return self._fault_sites

    # -- call-site index -------------------------------------------------------

    def fault_point_calls(self) -> List[
            Tuple[ModuleInfo, int, Optional[str]]]:
        """All ``fault_point(...)`` call sites in the scanned tree as
        (module, line, literal site or None when dynamic)."""
        if self._fault_point_calls is None:
            found = []
            for module in self.modules:
                if module.tree is None:
                    continue
                for call in _iter_calls(module.tree):
                    if _call_name(call) == "fault_point":
                        found.append((module, call.lineno,
                                      _literal_first_arg(call)))
            self._fault_point_calls = found
        return self._fault_point_calls

    def fault_point_literals(self) -> Set[str]:
        return {site for _, _, site in self.fault_point_calls()
                if site is not None}


def _import_event_types() -> Optional[Set[str]]:
    try:
        from repro.obs.tracer import EVENT_TYPES
    except ImportError:         # pragma: no cover - always importable here
        return None
    return set(EVENT_TYPES)


def _import_fault_sites() -> Optional[Set[str]]:
    try:
        from repro.faults.classes import FAULT_CLASSES
    except ImportError:         # pragma: no cover - always importable here
        return None
    sites: Set[str] = set()
    for cls in FAULT_CLASSES.values():
        sites.update(cls.sites)
    return sites


def fault_site_drift(src_root=None) -> Dict[str, List[str]]:
    """Registered fault sites that no ``fault_point`` literal serves.

    Returns ``{fault class name: [missing sites]}`` — non-empty means a
    fault class declares a site string the production tree no longer
    visits, so chaos runs of that class silently test nothing.  Used by
    ``tools/chaos.py`` as its fail-fast preflight and by FLT001.
    """
    try:
        from repro.faults.classes import FAULT_CLASSES
    except ImportError:         # pragma: no cover - always importable here
        return {}
    if src_root is None:
        import repro
        src_root = Path(repro.__file__).parent
    literals: Set[str] = set()
    for path in sorted(Path(src_root).rglob("*.py")):
        try:
            module = ModuleInfo(path, path.read_text())
        except OSError:         # pragma: no cover - unreadable tree
            continue
        if module.tree is None:
            continue
        for call in _iter_calls(module.tree):
            if _call_name(call) == "fault_point":
                literal = _literal_first_arg(call)
                if literal is not None:
                    literals.add(literal)
    drift: Dict[str, List[str]] = {}
    for name, cls in sorted(FAULT_CLASSES.items()):
        missing = [site for site in cls.sites if site not in literals]
        if missing:
            drift[name] = missing
    return drift
