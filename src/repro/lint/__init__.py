"""reprolint — the project-invariant static analyzer.

Generic linters (ruff, mypy, the old ``tools/minilint.py``) check
Python; they cannot check *this project's* contracts: that simulated
time never leaks wall-clock entropy (byte-identical traces), that the
threaded cache server only touches shared counters under its lock, that
every risky I/O call sits behind a registered fault-injection point,
that every traced event name exists in the taxonomy.  reprolint encodes
those invariants as AST rules that cross-check the source tree against
its own registries — :data:`repro.obs.tracer.EVENT_TYPES`,
:data:`repro.faults.classes.FAULT_CLASSES` — so the registries stay the
single source of truth and the checks never rot into hardcoded lists.

Entry points: ``repro lint`` (CLI), ``make lint`` / ``make verify``
(gates), :class:`LintEngine` (programmatic).  See
``docs/static_analysis.md`` for the rule catalog and the
suppression/baseline workflow.
"""

from repro.lint.core import (
    ERROR,
    WARNING,
    LintEngine,
    LintReport,
    Rule,
    RULES,
    Violation,
    all_rule_ids,
    register_rule,
)
from repro.lint.index import ModuleInfo, ProjectIndex, fault_site_drift

# importing the pack registers every rule with RULES
import repro.lint.rules  # noqa: F401  (registration side effect)

__all__ = [
    "ERROR",
    "WARNING",
    "LintEngine",
    "LintReport",
    "ModuleInfo",
    "ProjectIndex",
    "Rule",
    "RULES",
    "Violation",
    "all_rule_ids",
    "fault_site_drift",
    "register_rule",
]
