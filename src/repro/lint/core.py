"""reprolint core: rule plugin API, engine, suppressions, baseline.

A rule is a subclass of :class:`Rule` registered with
:func:`register_rule` (mirroring the fault-class registry idiom); the
engine instantiates every registered rule, runs ``check_module`` over
each parsed file and ``check_project`` once over the whole
:class:`~repro.lint.index.ProjectIndex`, then filters what fired
through two escape hatches:

* **inline suppressions** — ``# reprolint: disable=RULE`` on the
  flagged line (or ``disable-file=RULE`` anywhere in the file) for
  violations that are individually justified; the justification
  belongs in a comment next to the pragma;
* **baseline** — a checked-in JSON file of accepted legacy violations
  (``.reprolint-baseline.json``), so the gate can be adopted on a
  dirty tree and ratcheted down.  ``--strict`` ignores the baseline:
  the ``make verify`` gate accepts inline-justified suppressions but
  never baselined debt.

Exit semantics match every other linter: any reported violation fails
the run.  Severity (``error`` for invariant rules, ``warning`` for the
style pack) is carried in the report for consumers that want to
distinguish.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Type

from repro.lint.index import ModuleInfo, ProjectIndex

ERROR = "error"
WARNING = "warning"


@dataclass
class Violation:
    """One rule firing at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict:
        return {"rule": self.rule_id, "severity": self.severity,
                "path": self.path, "line": self.line,
                "message": self.message}

    def baseline_key(self) -> str:
        # line numbers shift under unrelated edits; identity is
        # (rule, file, message) so a baseline survives reformatting
        return f"{self.rule_id}:{self.path}:{self.message}"


class Rule:
    """One invariant; subclasses override ``check_module`` and/or
    ``check_project``."""

    #: registry key, also the suppression / ``--rules`` spelling
    rule_id: str = ""
    severity: str = ERROR
    #: one-line summary (``repro lint --list-rules``)
    title: str = ""
    #: why the invariant exists (the docs catalog carries the long form)
    rationale: str = ""

    def check_module(self, module: ModuleInfo,
                     index: ProjectIndex) -> Iterable[Violation]:
        return ()

    def check_project(self,
                      index: ProjectIndex) -> Iterable[Violation]:
        return ()

    def violation(self, module: ModuleInfo, line: int,
                  message: str) -> Violation:
        return Violation(rule_id=self.rule_id, severity=self.severity,
                         path=module.rel, line=line, message=message)


RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule {cls.rule_id!r}")
    RULES[cls.rule_id] = cls
    return cls


def all_rule_ids() -> List[str]:
    return sorted(RULES)


@dataclass
class LintReport:
    """Outcome of one engine run."""

    violations: List[Violation] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "files": self.files,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "violations": [v.to_dict() for v in self.violations],
        }

    def format(self) -> str:
        lines = [violation.format() for violation in self.violations]
        status = "clean" if self.ok else \
            f"{len(self.violations)} problem(s)"
        extras = []
        if self.suppressed:
            extras.append(f"{self.suppressed} suppressed inline")
        if self.baselined:
            extras.append(f"{self.baselined} baselined")
        tail = f" ({', '.join(extras)})" if extras else ""
        lines.append(f"reprolint: {self.files} file(s), {status}{tail}")
        return "\n".join(lines)


def load_baseline(path) -> Dict[str, int]:
    """Baseline keys -> allowance count (missing/invalid file = {})."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return {}
    counts: Dict[str, int] = {}
    for entry in payload.get("entries", []):
        if not isinstance(entry, dict):
            continue
        key = (f"{entry.get('rule')}:{entry.get('path')}:"
               f"{entry.get('message')}")
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(path, violations: Sequence[Violation]) -> None:
    payload = {
        "comment": "accepted legacy reprolint violations; shrink, "
                   "never grow (see docs/static_analysis.md)",
        "entries": [{"rule": v.rule_id, "path": v.path,
                     "message": v.message} for v in violations],
    }
    Path(path).write_text(json.dumps(payload, indent=1,
                                     sort_keys=True) + "\n")


class LintEngine:
    """Parse, index, run rules, filter suppressions and baseline."""

    def __init__(self, rules: Optional[Sequence[str]] = None,
                 event_types=None, fault_sites=None,
                 baseline: Optional[Dict[str, int]] = None) -> None:
        selected = all_rule_ids() if rules is None else list(rules)
        unknown = [rid for rid in selected if rid not in RULES]
        if unknown:
            raise ValueError(f"unknown rule(s) {unknown}; "
                             f"registered: {all_rule_ids()}")
        self.rules: List[Rule] = [RULES[rid]() for rid in selected]
        self._event_types = event_types
        self._fault_sites = fault_sites
        self.baseline = dict(baseline or {})

    # -- input collection ------------------------------------------------------

    @staticmethod
    def collect_files(paths: Sequence) -> List[Path]:
        files: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_file() and path.suffix == ".py":
                files.append(path)
            elif path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
        return files

    def lint_paths(self, paths: Sequence) -> LintReport:
        sources = {}
        for path in self.collect_files(paths):
            try:
                sources[path] = path.read_text()
            except (OSError, UnicodeDecodeError) as error:
                sources[path] = None
                bad = ModuleInfo(path, "")
                bad.syntax_error = SyntaxError(str(error))
        return self.lint_sources({path: text
                                  for path, text in sources.items()
                                  if text is not None})

    def lint_sources(self, sources: Dict) -> LintReport:
        """Lint in-memory {path: source} (the corpus-test entry point)."""
        modules = [ModuleInfo(path, text)
                   for path, text in sources.items()]
        index = ProjectIndex(modules,
                             event_types=self._event_types,
                             fault_sites=self._fault_sites)
        report = LintReport(files=len(modules))
        raw: List[Violation] = []
        for module in modules:
            if module.tree is None:
                error = module.syntax_error
                raw.append(Violation(
                    rule_id="E999", severity=ERROR, path=module.rel,
                    line=getattr(error, "lineno", 0) or 0,
                    message=f"syntax error: "
                            f"{getattr(error, 'msg', error)}"))
                continue
            for rule in self.rules:
                raw.extend(rule.check_module(module, index))
        for rule in self.rules:
            raw.extend(rule.check_project(index))

        by_rel = {module.rel: module for module in modules}
        budget = dict(self.baseline)
        for violation in sorted(raw, key=lambda v: (v.path, v.line,
                                                    v.rule_id)):
            module = by_rel.get(violation.path)
            if module is not None and module.suppressed(
                    violation.rule_id, violation.line):
                report.suppressed += 1
                continue
            key = violation.baseline_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                report.baselined += 1
                continue
            report.violations.append(violation)
        return report
