"""Shared infrastructure for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables or figures
(see DESIGN.md's per-experiment index).  Simulation results for the
Winstone suite are computed once per session and shared; each benchmark
additionally times a representative kernel via pytest-benchmark.

Reproduced figures are *emitted* — written to ``results/<name>.txt`` and
echoed to the real stdout so they appear in ``bench_output.txt`` even
under pytest's capture.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Tuple

import pytest

from repro.core import (
    ALL_CONFIGS,
    MachineConfig,
)
from repro.obs import trajectory
from repro.timing import Scenario, simulate_startup
from repro.timing.startup_sim import StartupResult
from repro.workloads import Workload, generate_workload, winstone_suite

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Simulation scales (paper: 500M for time-series, 100M for aggregates).
FULL_TRACE = 500_000_000
SHORT_TRACE = 100_000_000

SEED = 0


#: Figures emitted during the session, flushed (uncaptured) into the
#: terminal summary so they appear in `bench_output.txt`.
_EMITTED: list = []


def emit(name: str, text: str) -> None:
    """Write a reproduced figure to results/ and queue it for the
    terminal summary (pytest captures stdout at the fd level, so direct
    writes would be swallowed)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    _EMITTED.append(text)


def emit_json(name: str, payload: dict) -> None:
    """Write a machine-readable result to ``results/<name>.json``
    (deterministic serialization: sorted keys, fixed separators), and
    append the payload's scalar leaves to the bench trajectory
    (``results/bench_history.jsonl``) so ``repro bench diff`` can gate
    on drift across runs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, sort_keys=True, indent=1,
                   separators=(",", ": ")) + "\n")
    scalars = _history_scalars(payload)
    if scalars:
        trajectory.append_row(
            trajectory.history_row(name, scalars,
                                   {"bench": name, "seed": SEED}),
            path=RESULTS_DIR / "bench_history.jsonl")


#: History rows are bounded: at most this many scalar leaves per bench
#: (sorted by path, so the selection is stable across runs).
_HISTORY_CAP = 48


def _history_scalars(payload, prefix: str = "") -> Dict[str, float]:
    """Flatten a result document's numeric leaves into dotted paths.

    Wall-clock material never belongs in the trajectory (it would make
    every diff noisy), so any path mentioning wall/latency is dropped;
    canonical payloads contain none anyway.
    """
    flat: Dict[str, float] = {}

    def walk(node, path):
        if isinstance(node, dict):
            for key in sorted(node):
                walk(node[key], f"{path}.{key}" if path else str(key))
        elif isinstance(node, (list, tuple)):
            for index, item in enumerate(node):
                walk(item, f"{path}[{index}]")
        elif isinstance(node, bool) or node is None:
            return
        elif isinstance(node, (int, float)):
            lowered = path.lower()
            if "wall" not in lowered and "latency" not in lowered:
                flat[path] = node

    walk(payload, prefix)
    return {path: flat[path] for path in sorted(flat)[:_HISTORY_CAP]}


def ledger_payload(result) -> dict:
    """The per-phase cycle attribution of one startup simulation
    (:class:`repro.obs.ledger.CycleLedger`), JSON-ready."""
    ledger = result.ledger
    return {
        "config": result.config_name,
        "app": result.app_name,
        "scenario": result.scenario.value,
        "total_cycles": result.total_cycles,
        "phase_cycles": ledger.totals() if ledger else {},
        "eq1": ledger.eq1_breakdown() if ledger else {},
        "conserved": bool(result.conserved),
    }


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every reproduced figure after the test summary."""
    if not _EMITTED:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for text in _EMITTED:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)


class SuiteLab:
    """Lazily-computed simulation results over the Winstone suite."""

    def __init__(self) -> None:
        self._workloads: Dict[Tuple[str, int], Workload] = {}
        self._results: Dict[Tuple[str, str, int, Scenario],
                            StartupResult] = {}
        self.configs: Dict[str, MachineConfig] = ALL_CONFIGS()
        self.apps = winstone_suite()

    def workload(self, app_name: str, dyn_instrs: int) -> Workload:
        key = (app_name, dyn_instrs)
        if key not in self._workloads:
            app = next(app for app in self.apps if app.name == app_name)
            self._workloads[key] = generate_workload(
                app, dyn_instrs=dyn_instrs, seed=SEED)
        return self._workloads[key]

    def result(self, app_name: str, config_name: str,
               dyn_instrs: int = FULL_TRACE,
               scenario: Scenario = Scenario.MEMORY_STARTUP
               ) -> StartupResult:
        key = (app_name, config_name, dyn_instrs, scenario)
        if key not in self._results:
            workload = self.workload(app_name, dyn_instrs)
            config = self.configs[config_name]
            self._results[key] = simulate_startup(config, workload,
                                                  scenario)
        return self._results[key]

    def suite_results(self, config_name: str,
                      dyn_instrs: int = FULL_TRACE,
                      scenario: Scenario = Scenario.MEMORY_STARTUP):
        return [self.result(app.name, config_name, dyn_instrs, scenario)
                for app in self.apps]

    def steady_ipcs(self) -> Dict[str, float]:
        return {app.name: app.ipc_ref for app in self.apps}


@pytest.fixture(scope="session")
def lab() -> SuiteLab:
    return SuiteLab()
