"""Eq. 1 — translation overhead = M_BBT*Δ_BBT + M_SBT*Δ_SBT.

The paper evaluates the equation with measured parameters: 150K static
instructions at 105 native instructions each (15.75M) plus 3K hotspot
instructions at 1674 each (5.02M) — concluding BBT is the dominant
overhead and the right target for hardware assists.  The bench checks the
closed form and then cross-validates against the simulator's own M_BBT /
M_SBT accounting.
"""

import statistics

import pytest

from repro.analysis import translation_overhead
from repro.analysis.reporting import format_table
from conftest import SHORT_TRACE, emit


def test_eq1_overhead_model(lab, benchmark):
    model = translation_overhead()

    measured_m_bbt = statistics.mean(
        lab.result(app.name, "VM.soft", SHORT_TRACE).m_bbt_instrs
        for app in lab.apps)
    measured_m_sbt = statistics.mean(
        lab.result(app.name, "VM.soft", SHORT_TRACE).m_sbt_instrs
        for app in lab.apps)
    measured = translation_overhead(m_bbt=int(measured_m_bbt),
                                    m_sbt=int(measured_m_sbt))

    table = format_table(
        ["quantity", "paper", "simulated suite"],
        [
            ["M_BBT (static instrs)", 150_000, int(measured_m_bbt)],
            ["M_SBT (hot instrs)", 3_000, int(measured_m_sbt)],
            ["BBT overhead (native instrs)", model.bbt_overhead,
             measured.bbt_overhead],
            ["SBT overhead (native instrs)", model.sbt_overhead,
             measured.sbt_overhead],
            ["BBT share of total", model.bbt_fraction,
             measured.bbt_fraction],
        ],
        title="Eq. 1 - translation overhead model "
              "(100M-instruction traces)")
    emit("eq1_overhead_model", table)

    assert model.bbt_overhead == pytest.approx(15.75e6)
    assert model.sbt_overhead == pytest.approx(5.022e6)
    # the paper's conclusion: BBT dominates, in model and simulation
    assert model.bbt_fraction > 0.5
    assert measured.bbt_fraction > 0.5

    benchmark(translation_overhead)
