"""Ablation — translation chaining (functional VM).

Block exits initially route through the VMM's translation lookup table;
chaining patches them into direct jumps (Fig. 1b's "Chain" edges).  This
ablation runs real programs on the functional VM with chaining on/off
and measures VM exits and lookup traffic — the overhead chaining exists
to remove.
"""

from repro.analysis.reporting import format_table
from repro.core import CoDesignedVM, vm_soft
from repro.isa.x86lite import assemble
from repro.workloads.programs import PROGRAMS
from conftest import emit

PROGRAM_NAMES = ["fibonacci", "sieve", "bubble_sort", "matmul"]


def _run(name, enable_chaining):
    config = vm_soft().with_(enable_chaining=enable_chaining)
    vm = CoDesignedVM(config, hot_threshold=20)
    vm.load(assemble(PROGRAMS[name]))
    report = vm.run()
    return vm, report


def test_ablation_chaining(benchmark):
    rows = []
    improvements = []
    for name in PROGRAM_NAMES:
        vm_on, report_on = _run(name, True)
        vm_off, report_off = _run(name, False)
        assert report_on.output == report_off.output  # same results
        rows.append([name,
                     report_off.vm_exits, report_on.vm_exits,
                     vm_off.runtime.directory.lookups,
                     vm_on.runtime.directory.lookups,
                     report_on.chains_made])
        improvements.append(report_off.vm_exits
                            / max(report_on.vm_exits, 1))
    table = format_table(
        ["program", "exits (no chain)", "exits (chained)",
         "lookups (no chain)", "lookups (chained)", "chains made"],
        rows,
        title="Ablation - chaining on/off (functional VM, real "
              "programs)")
    notes = (f"\nVM-exit reduction from chaining: " +
             ", ".join(f"{name} {imp:.1f}x"
                       for name, imp in zip(PROGRAM_NAMES,
                                            improvements)))
    emit("ablation_chaining", table + notes)

    # chaining must reduce VMM round trips without changing results
    assert all(imp >= 1.0 for imp in improvements)
    assert max(improvements) > 1.5

    benchmark.pedantic(lambda: _run("fibonacci", True), rounds=3,
                       iterations=1)
