"""Table 1 — the XLTx86 instruction (the backend translation assist).

Functional characterization of the unit on real encoded x86lite
instructions: CSR field behaviour (ilen / uop bytes / Flag_cmplx /
Flag_cti), equivalence with the software cracker, and the throughput of
the hardware-assisted HAloop (Fig. 6a) running natively versus the
software BBT path — the mechanism behind the 83 -> 20 cycles/instruction
reduction of Section 5.3.
"""

from repro.analysis.reporting import format_table
from repro.hwassist import XLTX86_LATENCY, XLTx86Unit
from repro.hwassist.haloop import run_haloop
from repro.isa.fusible import FusibleMachine
from repro.isa.x86lite import assemble, decode
from repro.memory import AddressSpace, load_image
from repro.translator import crack
from conftest import emit

SAMPLES = [
    ("add eax, ebx", b"\x01\xd8"),
    ("mov eax, [ebx+ecx*4+0x10]", b"\x8b\x44\x8b\x10"),
    ("mov eax, 0x12345678", b"\xb8\x78\x56\x34\x12"),
    ("push eax", b"\x50"),
    ("lea edx, [ebp-8]", b"\x8d\x55\xf8"),
    ("ret", b"\xc3"),
    ("jz +0", b"\x74\x00"),
    ("div ebx", b"\xf7\xf3"),
    ("rep movsd", b"\xf3\xa5"),
    ("int 0x80", b"\xcd\x80"),
]


def test_table1_xltx86(benchmark):
    unit = XLTx86Unit()
    rows = []
    for text, raw in SAMPLES:
        result = unit.translate(raw)
        rows.append([text, result.x86_ilen, result.uop_byte_count,
                     "Y" if result.flag_cmplx else "-",
                     "Y" if result.flag_cti else "-"])
    table = format_table(
        ["x86 instruction", "x86_ilen", "uops_bytes", "Flag_cmplx",
         "Flag_cti"],
        rows,
        title=f"Table 1 - XLTx86 Fdst, Fsrc "
              f"(latency {XLTX86_LATENCY} cycles): decode one x86 "
              f"instruction from Fsrc into micro-ops in Fdst + CSR")

    # HAloop throughput demonstration: micro-ops of VMM work per
    # translated instruction, hardware loop vs software Delta_BBT
    source = "start:\n" + "\n".join(["add eax, 1", "mov ebx, [eax+4]",
                                     "lea ecx, [eax+ebx*2]"] * 8) + "\nret"
    image = assemble(source)
    memory = AddressSpace()
    entry = load_image(image, memory)
    machine = FusibleMachine(memory)
    run = run_haloop(machine, 0x1000_0000, entry, 0x2000_0000)
    hw_uops_per_instr = run.uops_executed / run.instructions_translated
    notes = (
        f"\nHAloop (Fig. 6a) running natively: "
        f"{run.instructions_translated} instructions translated, "
        f"{hw_uops_per_instr:.1f} micro-ops of VMM work per instruction\n"
        f"paper: ~20 cycles/instr with the assist vs 83 software "
        f"(Delta_BBT = 105 native instructions)")
    emit("table1_xltx86", table + notes)

    # equivalence & flag behaviour assertions
    for text, raw in SAMPLES:
        result = XLTx86Unit().translate(raw)
        software = crack(decode(raw))
        assert result.flag_cmplx == software.cmplx
        if not result.flag_cmplx:
            assert [str(u) for u in result.uops] == \
                [str(u) for u in software.uops]
    assert hw_uops_per_instr < 105 / 4  # far below software Delta_BBT

    benchmark(lambda: XLTx86Unit().translate(b"\x8b\x44\x8b\x10"))
