"""Extension ablation — how fast must the translation assist be?

The paper's two design points are 83 cycles/instruction (software BBT)
and 20 (with XLTx86); VM.fe removes BBT entirely.  This sweep treats the
assist's speed as a free variable and maps BBT cost to breakeven time and
total startup loss — answering the design question the paper's Section 6
poses for applying the idea to other DBT systems: most of the benefit is
captured once translation drops below ~20 cycles/instruction, because
BBT-code *emulation* (not translation) then dominates the remaining
overhead.
"""

from repro.analysis.reporting import format_table
from repro.timing import simulate_startup
from repro.timing.sampler import crossover_cycles
from conftest import FULL_TRACE, emit

BBT_COSTS = [83.0, 40.0, 20.0, 10.0, 5.0, 1.0]


def test_ablation_assist_quality(lab, benchmark):
    workload = lab.workload("Word", FULL_TRACE)
    reference = lab.result("Word", "Ref: superscalar")
    base = lab.configs["VM.be"]

    rows = []
    breakevens = {}
    translation_shares = {}
    for cost in BBT_COSTS:
        config = base.with_(name=f"VM.assist@{cost:g}",
                            costs=base.costs.__class__(
                                bbt_cycles_per_instr=cost))
        result = simulate_startup(config, workload)
        breakeven = crossover_cycles(result.series, reference.series,
                                     start=1e4)
        share = result.breakdown_fractions().get("bbt_translation", 0.0)
        breakevens[cost] = breakeven
        translation_shares[cost] = share
        rows.append([f"{cost:g}",
                     breakeven / 1e6,
                     result.breakdown.get("bbt_translation", 0.0) / 1e6,
                     100 * share,
                     100 * result.breakdown_fractions().get(
                         "bbt_emulation", 0.0)])
    table = format_table(
        ["BBT cycles/instr", "breakeven (Mcycles)",
         "translation Mcycles", "translation %", "BBT emulation %"],
        rows,
        title="Ablation - translation-assist quality sweep (Word, 500M "
              "instrs; paper's points: 83 software, 20 XLTx86)")
    notes = ("\ndiminishing returns: below ~20 cycles/instr the residual "
             "startup cost is BBT-code emulation, not translation — the "
             "regime where only the frontend (VM.fe) approach helps "
             "further.")
    emit("ablation_assist_quality", table + notes)

    # monotone improvement with diminishing returns
    assert breakevens[20.0] <= breakevens[83.0]
    assert breakevens[1.0] <= breakevens[20.0]
    gain_83_to_20 = breakevens[83.0] - breakevens[20.0]
    gain_20_to_1 = breakevens[20.0] - breakevens[1.0]
    assert gain_83_to_20 >= gain_20_to_1  # most benefit already captured
    # translation share becomes negligible at the assisted design point
    assert translation_shares[20.0] < 0.05
    assert translation_shares[83.0] > 2 * translation_shares[20.0]

    config = base.with_(costs=base.costs.__class__(
        bbt_cycles_per_instr=10.0))
    benchmark(lambda: simulate_startup(config, workload))
