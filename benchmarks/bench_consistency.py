"""Section 6 — performance consistency and predictability.

The paper's conclusion: "Runtime overhead not only affects startup
performance, but also system performance consistency and
predictability."  This bench quantifies the claim: the dispersion
(coefficient of variation) of interval IPCs during startup, per
configuration.  Translation-heavy configurations deliver the most
erratic early performance; the frontend-assisted VM is nearly as steady
as the conventional superscalar.
"""

import statistics

from repro.analysis.consistency import consistency_report
from repro.analysis.reporting import format_table
from conftest import FULL_TRACE, emit

CONFIGS = ["Ref: superscalar", "VM.fe", "VM.be", "VM.soft",
           "VM: Interp & SBT"]


def test_consistency(lab, benchmark):
    rows = []
    cvs = {}
    for name in CONFIGS:
        reports = [consistency_report(lab.result(app.name, name))
                   for app in lab.apps]
        cv = statistics.mean(report.cv for report in reports)
        worst = statistics.mean(report.worst_interval_fraction
                                for report in reports)
        cvs[name] = cv
        rows.append([name, cv, worst])
    table = format_table(
        ["configuration", "interval-IPC CV (lower = steadier)",
         "worst interval / aggregate"],
        rows,
        title="Section 6 - performance consistency during startup "
              "(suite averages, 500M-instruction traces)")
    notes = ("\nshape: translation overhead makes delivered performance "
             "erratic; the assists restore the conventional machine's "
             "steadiness (fe ~ ref < be < soft).")
    emit("consistency", table + notes)

    assert cvs["VM.soft"] > cvs["VM.fe"]
    assert cvs["VM.be"] >= cvs["VM.fe"]
    assert cvs["VM.fe"] < 1.5 * cvs["Ref: superscalar"] + 0.05

    result = lab.result("Word", "VM.soft", FULL_TRACE)
    benchmark(lambda: consistency_report(result))
