"""Section 2 — steady-state behaviour: Winstone vs SPECint contrast.

The paper's baseline VM achieves +8% steady-state IPC on the Winstone
suite (49% of dynamic micro-ops fused) versus +18% on SPEC2000 integer
(57% fused), attributing the difference to fusing rates and working-set
sizes.  This bench reproduces the contrast two ways:

* at the model level, from the application profiles and steady-state
  scenario simulations;
* at the functional level, by measuring real fused-pair fractions from
  SBT translations executed by the micro-op machine on hot loops.
"""

import statistics

from repro.analysis.reporting import format_table
from repro.core import CoDesignedVM, vm_soft
from repro.isa.x86lite import assemble
from repro.timing import Scenario, simulate_startup
from repro.workloads import generate_workload, spec_like_profile
from repro.workloads.programs import PROGRAMS
from conftest import emit

HOT_PROGRAMS = ["fibonacci", "sieve", "matmul", "bubble_sort"]


def _functional_fused_fractions():
    fractions = {}
    for name in HOT_PROGRAMS:
        vm = CoDesignedVM(vm_soft(), hot_threshold=8)
        vm.load(assemble(PROGRAMS[name]))
        report = vm.run()
        fractions[name] = report.fused_uop_fraction
    return fractions


def test_steady_state(lab, benchmark):
    # model level: steady-state scenario (everything translated & warm)
    speedups = []
    for app in lab.apps:
        workload = lab.workload(app.name, 100_000_000)
        vm = simulate_startup(lab.configs["VM.soft"], workload,
                              Scenario.STEADY_STATE)
        speedups.append(vm.aggregate_ipc / app.ipc_ref)
    spec = spec_like_profile()
    spec_workload = generate_workload(spec, dyn_instrs=100_000_000,
                                      seed=0)
    spec_vm = simulate_startup(lab.configs["VM.soft"], spec_workload,
                               Scenario.STEADY_STATE)
    spec_speedup = spec_vm.aggregate_ipc / spec.ipc_ref

    fused = _functional_fused_fractions()

    rows = [["Winstone suite (model)", statistics.mean(speedups),
             statistics.mean(app.fused_fraction for app in lab.apps)],
            ["SPECint-like (model)", spec_speedup, spec.fused_fraction]]
    table = format_table(
        ["workload", "steady-state VM speedup", "fused micro-op frac"],
        rows,
        title="Section 2 - steady-state speedup and fusing contrast "
              "(paper: Winstone +8% @49% fused, SPECint +18% @57%)")
    func_rows = [[name, fraction] for name, fraction in fused.items()]
    functional = format_table(
        ["hot program (functional VM)", "measured fused fraction"],
        func_rows,
        title="Functional fusing rates (real SBT translations executed "
              "on the micro-op machine)")
    project = [s for app, s in zip(lab.apps, speedups)
               if app.name == "Project"][0]
    notes = (f"\nProject steady-state speedup: paper +3% | model "
             f"{100 * (project - 1):.1f}%")
    emit("steady_state", table + "\n\n" + functional + notes)

    # Aggregates include the lukewarm tail still running as BBT code, so
    # measured suite numbers sit slightly below the paper's hot-code
    # steady-state IPCs (+8% Winstone / +18% SPEC / +3% Project).
    mean_speedup = statistics.mean(speedups)
    assert 1.02 <= mean_speedup <= 1.10
    assert spec_speedup > mean_speedup        # paper: SPEC gains more
    assert 1.08 <= spec_speedup <= 1.20
    assert 0.97 <= project <= 1.05            # Project gains the least
    assert project < mean_speedup
    # functional fusing rates fall in the paper's reported neighborhood
    assert statistics.mean(fused.values()) > 0.3
    assert max(fused.values()) <= 0.75

    benchmark.pedantic(_functional_fused_fractions, rounds=2,
                       iterations=1)
