"""Table 2 — machine configurations.

Prints the four simulated machine models with their pipeline/cache
parameters and per-configuration translation strategies, and verifies
the structural relationships the table encodes (shared substrate,
differing cold/hot code handling).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.core import ALL_CONFIGS, ref_superscalar, vm_be, vm_fe, \
    vm_soft
from repro.timing.pipeline import mode_costs_for
from repro.workloads import winstone_app
from conftest import emit


def test_table2_configs(benchmark):
    configs = [ref_superscalar(), vm_soft(), vm_be(), vm_fe()]
    rows = []
    for config in configs:
        costs = config.costs
        rows.append([
            config.name,
            config.initial_emulation,
            costs.bbt_cycles_per_instr
            if costs.bbt_cycles_per_instr else "-",
            "software SBT" if config.is_vm else "-",
            config.hot_threshold if config.is_vm else "-",
        ])
    strategy = format_table(
        ["configuration", "cold x86 code", "BBT cyc/instr",
         "hotspot x86 code", "hot threshold"],
        rows, title="Table 2 - machine configurations: translation "
                    "strategies")

    base = configs[0]
    substrate = format_table(
        ["parameter", "value (all configurations)"],
        [
            ["pipeline width", f"{base.pipeline.width}-wide"],
            ["fetch", f"{base.pipeline.fetch_bytes}B"],
            ["issue queue / ROB", f"{base.pipeline.issue_queue_slots} / "
                                  f"{base.pipeline.rob_entries}"],
            ["LD/ST queues", f"{base.pipeline.load_queue_slots} / "
                             f"{base.pipeline.store_queue_slots}"],
            ["physical registers", base.pipeline.physical_registers],
            ["L1 I-cache", f"{base.l1i.size // 1024}KB {base.l1i.assoc}-"
                           f"way {base.l1i.line_size}B, "
                           f"{base.l1i.latency} cyc"],
            ["L1 D-cache", f"{base.l1d.size // 1024}KB {base.l1d.assoc}-"
                           f"way, {base.l1d.latency} cyc"],
            ["L2", f"{base.l2.size // (1024 * 1024)}MB {base.l2.assoc}-"
                   f"way, {base.l2.latency} cyc"],
            ["memory latency", f"{base.memory_latency} cyc"],
        ],
        title="Table 2 - shared microarchitecture substrate")

    app = winstone_app("Word")
    cpi_rows = []
    for config in configs:
        costs = mode_costs_for(config, app)
        cpi_rows.append([config.name,
                         1.0 / costs.cold_execution_cpi(
                             config.initial_emulation),
                         1.0 / costs.sbt_cpi if config.is_vm else "-"])
    cpis = format_table(
        ["configuration", "cold-code IPC (Word)", "hotspot IPC (Word)"],
        cpi_rows, title="Derived steady execution rates")

    emit("table2_configs", strategy + "\n\n" + substrate + "\n\n" + cpis)

    # structural assertions
    for config in configs[1:]:
        assert config.l1i == base.l1i and config.l2 == base.l2
        assert config.pipeline.width == base.pipeline.width
    assert vm_soft().costs.bbt_cycles_per_instr == 83.0
    assert vm_be().costs.bbt_cycles_per_instr == 20.0
    assert vm_fe().costs.bbt_cycles_per_instr is None
    assert all(config.hot_threshold == 8000 for config in configs[1:])
    assert len(ALL_CONFIGS()) == 5

    benchmark(lambda: mode_costs_for(vm_be(), app))
