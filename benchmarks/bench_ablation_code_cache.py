"""Ablation — code-cache capacity pressure (functional VM).

Section 1.1 warns that "a limited code cache size can cause hotspot
re-translations when a switched-out task resumes".  This ablation runs a
multi-phase program under shrinking code caches and measures flushes and
re-translation work.
"""

from repro.analysis.reporting import format_table
from repro.core import vm_soft
from repro.isa.x86lite import Reg, X86State, assemble
from repro.memory import AddressSpace, load_image
from repro.memory.loader import DEFAULT_STACK_TOP
from repro.translator import TranslationDirectory
from repro.vmm import VMRuntime
from conftest import emit

# A program with several phases, each its own loop (working set of many
# blocks, revisited round-robin like competing tasks).
PHASED = """
start:
    mov esi, 3              ; outer passes (task switches)
passes:
""" + "\n".join(f"""
    mov ecx, 40
phase{i}:
    add eax, {i + 1}
    imul ebx, eax, {i + 2}
    and ebx, 0xFFFF
    dec ecx
    jnz phase{i}
""" for i in range(8)) + """
    dec esi
    jnz passes
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

CAPACITIES = [1 << 20, 2048, 1024, 512]


def _run(bbt_capacity):
    image = assemble(PHASED)
    state = X86State(memory=AddressSpace())
    state.regs[Reg.ESP] = DEFAULT_STACK_TOP
    state.eip = load_image(image, state.memory)
    directory = TranslationDirectory(
        state.memory, bbt_capacity=bbt_capacity,
        sbt_base=0x2000_0000 + max(bbt_capacity, 4096),
        sbt_capacity=1 << 20)
    runtime = VMRuntime(state, hot_threshold=25, directory=directory)
    runtime.run()
    assert state.halted
    return runtime, directory


def test_ablation_code_cache(benchmark):
    rows = []
    translated = {}
    for capacity in CAPACITIES:
        runtime, directory = _run(capacity)
        translated[capacity] = runtime.bbt.blocks_translated
        rows.append([capacity if capacity < (1 << 20) else "unlimited",
                     directory.bbt_cache.flushes,
                     runtime.bbt.blocks_translated,
                     runtime.bbt.instrs_translated,
                     directory.chains_made])
    table = format_table(
        ["BBT cache bytes", "flushes", "blocks translated",
         "instrs translated", "chains"],
        rows,
        title="Ablation - code-cache capacity (functional VM, phased "
              "program; smaller caches force flushes and "
              "re-translation)")
    unlimited = translated[CAPACITIES[0]]
    smallest = translated[CAPACITIES[-1]]
    notes = (f"\nre-translation amplification at "
             f"{CAPACITIES[-1]}B: {smallest / unlimited:.1f}x the "
             f"unlimited-cache translation work")
    emit("ablation_code_cache", table + notes)

    assert smallest > unlimited          # re-translation happened
    assert _run(CAPACITIES[-1])[1].bbt_cache.flushes >= 1
    assert _run(CAPACITIES[0])[1].bbt_cache.flushes == 0

    benchmark.pedantic(lambda: _run(2048), rounds=3, iterations=1)
