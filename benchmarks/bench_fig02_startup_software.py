"""Fig. 2 — VM startup performance vs a conventional x86 processor.

Regenerates the paper's first headline figure: normalized aggregate IPC
over time (log cycles) for the reference superscalar, the software VM
with BBT+SBT staged translation, the Interp+SBT strategy, and the VM
steady-state line — averaged over the ten Winstone applications on
500M-instruction traces.

Paper shape targets: the BBT+SBT VM breaks even later than 200M cycles
and has executed about a quarter of the reference's instructions at the
one-million-cycle point; the interpretation-based VM ends at roughly half
the reference's aggregate performance.

On top of the paper's curves, a "VM warm start" column shows the same
software VM booting from the persistent translation repository
(:mod:`repro.persist`, PERSISTENT_WARM scenario): translations are
re-materialized at boot instead of re-built, which must move the
breakeven point well below the cold software VM's.
"""

import statistics

from repro.analysis import suite_average_curve
from repro.analysis.reporting import format_table
from repro.analysis.startup_curves import log_grid
from repro.timing import Scenario, simulate_startup
from repro.timing.sampler import crossover_cycles, interpolate_at
from conftest import FULL_TRACE, emit, emit_json, ledger_payload

CONFIGS = ["Ref: superscalar", "VM: Interp & SBT", "VM.soft"]


def _figure_rows(lab):
    grid = log_grid(1e4, 1e9, per_decade=2)
    curves = {}
    for config_name in CONFIGS:
        results = lab.suite_results(config_name, FULL_TRACE)
        curves[config_name] = suite_average_curve(
            results, lab.steady_ipcs(), grid)
    # warm start: VM.soft booting from the persistent translation
    # repository instead of translating from scratch
    curves["VM.soft warm"] = suite_average_curve(
        lab.suite_results("VM.soft", FULL_TRACE,
                          Scenario.PERSISTENT_WARM),
        lab.steady_ipcs(), grid)
    steady = [1.08] * len(grid)  # VM steady-state line (Section 2: +8%)
    rows = []
    for index, cycles in enumerate(grid):
        rows.append([f"{cycles:.0e}",
                     curves["Ref: superscalar"][index],
                     curves["VM: Interp & SBT"][index],
                     curves["VM.soft"][index],
                     curves["VM.soft warm"][index],
                     steady[index]])
    return rows, curves, grid


def _milestones(lab):
    ratios = []
    breakevens = []
    warm_breakevens = []
    interp_ratio = []
    for app in lab.apps:
        ref = lab.result(app.name, "Ref: superscalar")
        soft = lab.result(app.name, "VM.soft")
        warm = lab.result(app.name, "VM.soft", FULL_TRACE,
                          Scenario.PERSISTENT_WARM)
        interp = lab.result(app.name, "VM: Interp & SBT")
        ratios.append(interpolate_at(ref.series, 1e6)
                      / max(interpolate_at(soft.series, 1e6), 1))
        breakevens.append(crossover_cycles(soft.series, ref.series,
                                           start=1e4))
        warm_breakevens.append(crossover_cycles(warm.series, ref.series,
                                                start=1e4))
        interp_ratio.append(interp.aggregate_ipc / ref.aggregate_ipc)
    return (statistics.median(ratios), statistics.median(breakevens),
            statistics.median(warm_breakevens),
            statistics.mean(interp_ratio))


def test_fig02_startup_software(lab, benchmark):
    rows, curves, grid = _figure_rows(lab)
    (ratio_1m, soft_breakeven, warm_breakeven,
     interp_ratio) = _milestones(lab)

    table = format_table(
        ["cycles", "Ref: superscalar", "VM: Interp & SBT",
         "VM: BBT & SBT", "VM warm start", "VM steady state"],
        rows,
        title="Fig. 2 - startup performance, normalized aggregate IPC "
              "(Winstone suite average, 500M-instruction traces)")
    notes = (
        f"\npaper vs measured milestones:\n"
        f"  ref/VM.soft instr ratio @1M cycles : paper ~4x   | "
        f"measured {ratio_1m:.1f}x (suite median)\n"
        f"  VM.soft breakeven                  : paper >200M | "
        f"measured {soft_breakeven / 1e6:.0f}M (suite median)\n"
        f"  VM.soft warm-start breakeven       : persistent cache | "
        f"measured {warm_breakeven / 1e6:.0f}M (suite median)\n"
        f"  Interp+SBT final aggregate vs ref  : paper ~0.5  | "
        f"measured {interp_ratio:.2f} (suite mean)")
    emit("fig02_startup_software", table + notes)
    # machine-readable companion: the ledger's per-phase cycle
    # attribution for one representative app under every curve's
    # configuration (every cycle in exactly one Eq. 1 phase)
    attribution = [ledger_payload(lab.result("Word", config_name))
                   for config_name in CONFIGS]
    attribution.append(ledger_payload(
        lab.result("Word", "VM.soft", FULL_TRACE,
                   Scenario.PERSISTENT_WARM)))
    assert all(entry["conserved"] for entry in attribution)
    emit_json("fig02_startup_software", {
        "milestones": {
            "ref_over_soft_instr_ratio_at_1M": ratio_1m,
            "soft_breakeven_cycles": soft_breakeven,
            "warm_breakeven_cycles": warm_breakeven,
            "interp_final_ratio": interp_ratio,
        },
        "phase_attribution": attribution,
    })

    # shape assertions (the reproduction contract)
    assert ratio_1m > 2.5
    assert soft_breakeven > 100e6
    assert 0.35 <= interp_ratio <= 0.8
    # VM.soft ends above Interp+SBT, below/near ref's normalized curve
    assert curves["VM.soft"][-1] > curves["VM: Interp & SBT"][-1]
    # the persistent translation cache measurably cuts startup: the warm
    # curve breaks even well before the cold one and, once past its
    # boot-time re-materialization phase, dominates it for the rest of
    # the startup transient
    assert warm_breakeven < soft_breakeven / 2
    past_boot = [(warm, cold) for cycles, warm, cold
                 in zip(grid, curves["VM.soft warm"], curves["VM.soft"])
                 if cycles >= 1e7]
    assert past_boot
    assert all(warm >= cold for warm, cold in past_boot)
    assert any(warm > cold for warm, cold in past_boot)

    # timed kernel: one app, one config startup simulation at full scale
    workload = lab.workload("Word", FULL_TRACE)
    config = lab.configs["VM.soft"]
    benchmark(lambda: simulate_startup(config, workload))
