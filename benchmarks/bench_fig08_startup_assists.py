"""Fig. 8 — startup performance with the hardware assists.

Fig. 2's comparison plus VM.be (XLTx86 backend unit) and VM.fe (dual-mode
frontend decoders).  Paper shape targets: VM.fe shows practically zero
startup overhead and tracks the reference curve, reaching half the
steady-state gain around 100M cycles; VM.be lags for the first millions
of cycles, breaks even around the 10M-cycle mark, and converges with
VM.fe thereafter.
"""

import statistics

from repro.analysis import half_gain_point, suite_average_curve
from repro.analysis.reporting import format_table
from repro.analysis.startup_curves import log_grid
from repro.timing import Scenario, simulate_startup
from repro.timing.sampler import crossover_cycles, interpolate_at
from conftest import FULL_TRACE, emit

CONFIGS = ["Ref: superscalar", "VM.soft", "VM.be", "VM.fe"]


def test_fig08_startup_assists(lab, benchmark):
    grid = log_grid(1e4, 1e9, per_decade=2)
    curves = {name: suite_average_curve(lab.suite_results(name),
                                        lab.steady_ipcs(), grid)
              for name in CONFIGS}
    # software-only alternative to the hardware assists: warm-start the
    # software VM from the persistent translation repository
    curves["VM.soft warm"] = suite_average_curve(
        lab.suite_results("VM.soft", FULL_TRACE,
                          Scenario.PERSISTENT_WARM),
        lab.steady_ipcs(), grid)
    columns = CONFIGS + ["VM.soft warm"]

    rows = [[f"{cycles:.0e}"] + [curves[name][index] for name in columns]
            + [1.08]
            for index, cycles in enumerate(grid)]
    table = format_table(["cycles"] + columns + ["VM steady"], rows,
                         title="Fig. 8 - startup performance with "
                               "hardware assists (suite average)")

    be_breakeven, fe_breakeven, fe_tracks = [], [], []
    for app in lab.apps:
        ref = lab.result(app.name, "Ref: superscalar")
        be = lab.result(app.name, "VM.be")
        fe = lab.result(app.name, "VM.fe")
        be_breakeven.append(crossover_cycles(be.series, ref.series,
                                             start=1e4))
        fe_breakeven.append(crossover_cycles(fe.series, ref.series,
                                             start=1e4))
        fe_tracks.append(interpolate_at(fe.series, 1e6)
                         / max(interpolate_at(ref.series, 1e6), 1))
    fe_half_gain = statistics.median(
        half_gain_point(lab.result(app.name, "VM.fe"),
                        lab.result(app.name, "Ref: superscalar"),
                        steady_gain=0.08)
        for app in lab.apps)

    notes = (
        f"\npaper vs measured milestones (suite medians):\n"
        f"  VM.be breakeven      : paper ~10M cycles | measured "
        f"{statistics.median(be_breakeven) / 1e6:.0f}M\n"
        f"  VM.fe breakeven      : paper ~0 (tracks ref) | measured "
        f"{statistics.median(fe_breakeven) / 1e6:.1f}M\n"
        f"  VM.fe instrs vs ref @1M cycles: paper ~1.0 | measured "
        f"{statistics.median(fe_tracks):.2f}\n"
        f"  VM.fe half-gain point: paper ~100M cycles | measured "
        f"{fe_half_gain / 1e6:.0f}M")
    emit("fig08_startup_assists", table + notes)

    # shape assertions: assists dramatically cut startup overhead
    soft_med = statistics.median(
        crossover_cycles(lab.result(app.name, "VM.soft").series,
                         lab.result(app.name,
                                    "Ref: superscalar").series,
                         start=1e4)
        for app in lab.apps)
    be_med = statistics.median(be_breakeven)
    fe_med = statistics.median(fe_breakeven)
    assert fe_med < be_med < soft_med
    assert fe_med < 50e6           # "practically zero"
    assert be_med < soft_med / 2   # large factor improvement
    assert statistics.median(fe_tracks) > 0.8  # fe tracks the reference
    # warm-starting the software VM from the persistent repository cuts
    # its breakeven by a large factor without any hardware assist
    warm_med = statistics.median(
        crossover_cycles(
            lab.result(app.name, "VM.soft", FULL_TRACE,
                       Scenario.PERSISTENT_WARM).series,
            lab.result(app.name, "Ref: superscalar").series,
            start=1e4)
        for app in lab.apps)
    assert warm_med < soft_med / 2

    workload = lab.workload("Word", FULL_TRACE)
    config = lab.configs["VM.fe"]
    benchmark(lambda: simulate_startup(config, workload))
