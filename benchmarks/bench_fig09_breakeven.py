"""Fig. 9 — per-application breakeven points.

For each of the ten Winstone applications: the cycles each VM
configuration needs to catch up with the reference superscalar in total
instructions executed.  Paper shape targets: VM.soft bars dominate the
chart, several exceeding the 200M-cycle axis (labeled 402M/255M); either
assist brings most applications down dramatically; *Project* does not
break even under any VM configuration within the 500M-instruction traces
(its steady-state gain is only +3%).
"""

import math
import statistics

from repro.analysis.breakeven import breakeven_for_app, format_breakeven
from repro.analysis.reporting import format_table
from repro.timing.sampler import crossover_cycles
from conftest import FULL_TRACE, emit

VM_NAMES = ["VM.soft", "VM.be", "VM.fe"]


def _breakevens(lab):
    table = {}
    for app in lab.apps:
        ref = lab.result(app.name, "Ref: superscalar")
        table[app.name] = {
            name: crossover_cycles(lab.result(app.name, name).series,
                                   ref.series, start=1e4)
            for name in VM_NAMES}
    return table


def test_fig09_breakeven(lab, benchmark):
    breakevens = _breakevens(lab)

    rows = [[app] + [format_breakeven(values[name])
                     for name in VM_NAMES]
            for app, values in breakevens.items()]
    table = format_table(["benchmark"] + VM_NAMES, rows,
                         title="Fig. 9 - breakeven points vs the "
                               "reference superscalar (cycles; 'never' ="
                               " no breakeven within the 500M trace)")

    soft_values = [values["VM.soft"] for values in breakevens.values()]
    over_200m = sum(1 for value in soft_values if value > 200e6)
    assisted_fast = sum(
        1 for values in breakevens.values()
        if min(values["VM.be"], values["VM.fe"]) < 60e6)
    notes = (
        f"\npaper vs measured shape:\n"
        f"  VM.soft apps beyond 200M: paper: several (402M/255M labels) "
        f"| measured {over_200m}/10\n"
        f"  apps where an assist breaks even within ~50M: paper: most | "
        f"measured {assisted_fast}/10\n"
        f"  Project: paper: no VM config breaks even | measured "
        + ", ".join(format_breakeven(breakevens["Project"][name])
                    for name in VM_NAMES))
    emit("fig09_breakeven", table + notes)

    # shape assertions
    assert over_200m >= 3
    assert assisted_fast >= 6
    # Project's VM.soft and VM.be stay behind essentially forever
    project = breakevens["Project"]
    assert project["VM.soft"] > 400e6 or math.isinf(project["VM.soft"])
    assert project["VM.be"] > 400e6 or math.isinf(project["VM.be"])
    # assists never hurt: per-app breakeven ordering holds
    for values in breakevens.values():
        assert values["VM.fe"] <= values["VM.soft"]

    # timed kernel: one full per-app breakeven computation
    app = lab.apps[-1]
    from repro.core import VM_CONFIGS, ref_superscalar
    benchmark.pedantic(
        lambda: breakeven_for_app(app, list(VM_CONFIGS().values()),
                                  ref_superscalar(),
                                  dyn_instrs=50_000_000),
        rounds=3, iterations=1)
