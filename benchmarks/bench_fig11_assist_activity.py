"""Fig. 11 — activity of the hardware x86 decode logic over time.

The fraction of cycles the x86 decoders must be powered: always-on for
the conventional superscalar; zero for the software-only VM; decaying
quickly after ~10K cycles for VM.be (one XLTx86 unit, busy only during
BBT translation); decaying later for VM.fe (dual-mode decoders active
whenever execution is in x86-mode, until hotspot coverage takes over).
"""

import statistics

from repro.analysis import activity_curve
from repro.analysis.activity import final_activity
from repro.analysis.reporting import format_table
from repro.analysis.startup_curves import log_grid
from conftest import FULL_TRACE, emit

CONFIGS = ["Ref: superscalar", "VM.soft", "VM.be", "VM.fe"]


def _suite_activity(lab, config_name, grid):
    curves = [activity_curve(lab.result(app.name, config_name), grid)
              for app in lab.apps]
    return [statistics.mean(values) for values in zip(*curves)]


def test_fig11_assist_activity(lab, benchmark):
    grid = log_grid(1e3, 1e9, per_decade=1)
    curves = {name: _suite_activity(lab, name, grid)
              for name in CONFIGS}

    rows = [[f"{cycles:.0e}"] + [curves[name][index]
                                 for name in CONFIGS]
            for index, cycles in enumerate(grid)]
    table = format_table(["cycles"] + [f"{name} %" for name in CONFIGS],
                         rows,
                         title="Fig. 11 - x86 decode logic activity "
                               "(suite average, % of cycles)")
    finals = {name: statistics.mean(
        final_activity(lab.result(app.name, name)) for app in lab.apps)
        for name in CONFIGS}
    notes = (
        f"\npaper vs measured shape:\n"
        f"  superscalar: always on      | measured final "
        f"{finals['Ref: superscalar']:.0f}%\n"
        f"  VM.soft: no x86 decoders    | measured final "
        f"{finals['VM.soft']:.0f}%\n"
        f"  VM.be: negligible by 100M   | measured final "
        f"{finals['VM.be']:.2f}%\n"
        f"  VM.fe: decays later than be | measured final "
        f"{finals['VM.fe']:.0f}%")
    emit("fig11_assist_activity", table + notes)

    assert finals["Ref: superscalar"] > 90
    assert finals["VM.soft"] == 0
    assert finals["VM.be"] < 2      # negligible after startup
    assert finals["VM.be"] < finals["VM.fe"] < \
        finals["Ref: superscalar"]
    # both assists' activity decays over time
    for name in ("VM.be", "VM.fe"):
        curve = curves[name]
        early = max(curve[:len(curve) // 2])
        assert curve[-1] < early

    result = lab.result("Word", "VM.fe", FULL_TRACE)
    benchmark(lambda: activity_curve(result, grid))
