"""Engineering throughput of the functional VM itself.

Not a paper figure — this tracks the speed of the repository's own
executable models (instructions/second of the interpreter and of the
full staged-translation VM on a hot loop), so regressions in the
functional layer are visible in benchmark history.
"""

import time

from repro.analysis.reporting import format_table
from repro.core import CoDesignedVM, ref_superscalar, vm_soft
from repro.isa.x86lite import assemble
from conftest import emit

HOT_LOOP = """
start:
    mov ecx, 20000
loop:
    add eax, ecx
    xor eax, 0x5A5A
    lea ebx, [eax+ecx*2]
    dec ecx
    jnz loop
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

DYNAMIC_INSTRS = 6 * 20_000 + 4


def _throughput(factory, **kwargs):
    image = assemble(HOT_LOOP)
    started = time.perf_counter()
    vm = CoDesignedVM(factory(), **kwargs)
    vm.load(image)
    vm.run(max_uops=80_000_000)
    elapsed = time.perf_counter() - started
    return DYNAMIC_INSTRS / elapsed, elapsed


def test_functional_throughput(benchmark):
    interp_rate, _ = _throughput(ref_superscalar)
    vm_rate, _ = _throughput(vm_soft, hot_threshold=50)
    rows = [
        ["interpreter (reference config)", f"{interp_rate:,.0f}"],
        ["staged-translation VM (VM.soft)", f"{vm_rate:,.0f}"],
    ]
    emit("functional_throughput",
         format_table(["engine", "x86lite instrs/sec"], rows,
                      title="Functional-model throughput "
                            "(engineering metric, not a paper figure)"))

    assert interp_rate > 1_000      # sanity floor
    assert vm_rate > 100

    vm = CoDesignedVM(vm_soft(), hot_threshold=50)
    vm.load(assemble(HOT_LOOP))

    def kernel():
        vm.restart(warm=True)
        vm.run(max_uops=80_000_000)

    benchmark.pedantic(kernel, rounds=3, iterations=1)
