"""Ablation — the SBT's optimization passes (functional VM).

Isolates each stage of the hotspot optimizer on real hot loops: dead-flag
elimination, redundant-load elimination / store-forwarding, and macro-op
fusion.  Results are identical in every variant (the correctness
contract); what changes is the quality of the emitted superblocks — the
source of the paper's p = 1.15–1.2 SBT-over-BBT speedup and the 49%/57%
fused fractions.
"""

from repro.analysis.reporting import format_table
from repro.core import CoDesignedVM, vm_soft
from repro.isa.x86lite import assemble
from conftest import emit

PROGRAM = """
start:
    mov esi, 0x600000
    mov dword [esi], 1
    mov ecx, 500
loop:
    mov eax, [esi]
    lea ebx, [eax+eax*2]
    add [esi], ebx
    mov edx, [esi]
    and edx, 0xFFFF
    mov [esi+4], edx
    dec ecx
    jnz loop
    mov eax, 1
    mov ebx, [0x600004]
    int 0x80
    mov eax, 0
    mov ebx, 0
    int 0x80
"""

VARIANTS = [
    ("all passes", dict()),
    ("no fusion", dict(enable_fusion=False)),
    ("no flag elim", dict(enable_dead_flag_elim=False)),
    ("no load elim", dict(enable_load_elim=False)),
    ("none", dict(enable_fusion=False, enable_dead_flag_elim=False,
                  enable_load_elim=False)),
]


def _run(**overrides):
    vm = CoDesignedVM(vm_soft(), hot_threshold=6)
    vm.load(assemble(PROGRAM))
    for key, value in overrides.items():
        setattr(vm.runtime.sbt, key, value)
    report = vm.run()
    sbt = vm.runtime.sbt
    return report, sbt


def test_ablation_sbt_opts(benchmark):
    rows = []
    outputs = set()
    measured = {}
    for label, overrides in VARIANTS:
        report, sbt = _run(**overrides)
        outputs.add(tuple(report.output))
        measured[label] = (report, sbt)
        rows.append([label,
                     sbt.uops_emitted,
                     sbt.pairs_fused,
                     f"{report.fused_uop_fraction:.1%}",
                     sbt.flags_eliminated,
                     sbt.loads_eliminated])
    table = format_table(
        ["variant", "SBT uops", "pairs fused", "dyn fused frac",
         "flags elim", "loads elim"],
        rows,
        title="Ablation - SBT optimization passes (hot RMW loop, "
              "identical program results in every variant)")
    emit("ablation_sbt_opts", table)

    # correctness: every variant computes the same answer
    assert len(outputs) == 1
    full_report, full_sbt = measured["all passes"]
    none_report, none_sbt = measured["none"]
    # each pass does real work on this loop
    assert full_sbt.pairs_fused > 0
    assert full_sbt.flags_eliminated > 0
    assert full_sbt.loads_eliminated > 0
    assert measured["no fusion"][1].pairs_fused == 0
    assert measured["no load elim"][1].loads_eliminated == 0
    # optimization shrinks executed micro-op footprints
    assert full_report.fused_uop_fraction > \
        none_report.fused_uop_fraction

    benchmark.pedantic(lambda: _run(), rounds=3, iterations=1)
