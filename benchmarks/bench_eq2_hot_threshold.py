"""Eq. 2 — the Jikes-style break-even model that sets the hot threshold.

N = Δ_SBT / (p - 1): with Δ_SBT ≈ 1200 x86 instructions and p = 1.15,
N = 8000 — the threshold used by VM.soft/VM.be/VM.fe.  With an
interpreter as the initial stage (p ≈ 45 vs interpretation), the same
equation yields the ~25-execution threshold of the Interp+SBT strategy.
"""

import pytest

from repro.analysis import hot_threshold, sbt_breakeven_executions
from repro.analysis.reporting import format_table
from conftest import emit


def test_eq2_hot_threshold(benchmark):
    rows = []
    for delta, speedup, label in [
            (1200, 1.15, "BBT stage, p = 1.15 (paper: 8000)"),
            (1200, 1.20, "BBT stage, p = 1.20"),
            (1152, 45.0, "interpreter stage (paper: ~25)"),
            (600, 1.15, "hypothetical 2x cheaper optimizer"),
    ]:
        rows.append([label, delta, speedup,
                     sbt_breakeven_executions(delta, speedup)])
    table = format_table(
        ["stage", "delta_SBT", "p", "break-even N"],
        rows,
        title="Eq. 2 - hot-threshold derivation: N = delta_SBT / (p - 1)")
    emit("eq2_hot_threshold", table)

    assert hot_threshold(1200, 1.15) == 8000
    assert 20 <= sbt_breakeven_executions(1152, 45.0) <= 30
    assert sbt_breakeven_executions(1200, 1.20) == pytest.approx(6000)

    benchmark(lambda: hot_threshold(1200, 1.15))
