"""Fig. 3 — Winstone2004 instruction execution-frequency profile.

Left axis: static x86 instructions per execution-frequency bucket (the
working set is ~150K instructions and overwhelmingly cold).  Right axis:
distribution of dynamic instructions over the same buckets (the paper
highlights 30+% landing in the 10K-100K bucket).  The 8000-execution hot
threshold cuts off roughly 3K static instructions (M_SBT).
"""

from repro.analysis import suite_frequency_profile
from repro.analysis.frequency_profile import frequency_profile
from repro.analysis.reporting import format_table
from conftest import SHORT_TRACE, emit


def test_fig03_frequency_profile(lab, benchmark):
    workloads = [lab.workload(app.name, SHORT_TRACE) for app in lab.apps]
    profile = suite_frequency_profile(workloads)

    rows = []
    fractions = profile.dynamic_fractions()
    for bucket, static, fraction in zip(profile.buckets,
                                        profile.static_instrs,
                                        fractions):
        rows.append([f"{bucket:,}+", static / 1000.0, 100 * fraction])
    table = format_table(
        ["exec count", "static instrs (K, avg/app)", "dynamic %"],
        rows,
        title="Fig. 3 - execution frequency profile "
              "(100M-instruction traces, Winstone suite)")
    notes = (
        f"\npaper vs measured:\n"
        f"  static working set (M_BBT)      : paper ~150K | measured "
        f"{profile.total_static / 1000:.0f}K\n"
        f"  static above 8000-exec threshold: paper ~3K   | measured "
        f"{profile.static_above(8000) / 1000:.1f}K\n"
        f"  peak dynamic bucket             : paper 10K+  | measured "
        f"{profile.peak_dynamic_bucket():,}+ "
        f"({100 * max(fractions):.0f}% of dynamic instrs; paper 30+%)")
    emit("fig03_frequency_profile", table + notes)

    assert 120_000 <= profile.total_static <= 190_000
    assert 1_000 <= profile.static_above(8000) <= 9_000
    assert profile.peak_dynamic_bucket() == 10_000
    assert max(fractions) >= 0.30

    benchmark(lambda: frequency_profile(workloads[0]))
