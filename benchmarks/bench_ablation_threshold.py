"""Ablation — the hot-threshold trade-off behind Eq. 2.

Section 3.2 argues for a *balanced* threshold: too low and SBT overhead
explodes (many lukewarm blocks optimized); too high and hotspot coverage
(and its +8%) is forfeited.  This sweep varies the threshold around the
derived 8000 and shows total VM time is worst at the extremes.
"""

from repro.analysis.reporting import format_table
from repro.timing import simulate_startup
from conftest import FULL_TRACE, emit

THRESHOLDS = [25, 250, 2_000, 8_000, 32_000, 128_000]


def test_ablation_hot_threshold(lab, benchmark):
    workload = lab.workload("Word", FULL_TRACE)
    base_config = lab.configs["VM.soft"]
    rows = []
    totals = {}
    for threshold in THRESHOLDS:
        config = base_config.with_(hot_threshold=threshold)
        result = simulate_startup(config, workload)
        totals[threshold] = result.total_cycles
        rows.append([threshold,
                     result.total_cycles / 1e6,
                     result.m_sbt_instrs,
                     100 * result.hotspot_coverage,
                     result.breakdown.get("sbt_translation", 0) / 1e6])
    table = format_table(
        ["hot threshold", "total Mcycles", "M_SBT instrs",
         "coverage %", "SBT overhead Mcycles"],
        rows,
        title="Ablation - hot-threshold sweep (VM.soft, Word, 500M "
              "instrs; Eq. 2 derives 8000)")
    best = min(totals, key=totals.get)
    notes = (f"\nbest threshold in sweep: {best} "
             f"(Eq. 2's derivation: 8000)")
    emit("ablation_threshold", table + notes)

    # the derived threshold must beat both extremes
    assert totals[8_000] < totals[25]
    assert totals[8_000] < totals[128_000]
    # low thresholds explode SBT translation overhead
    low = simulate_startup(base_config.with_(hot_threshold=25), workload)
    high = simulate_startup(base_config.with_(hot_threshold=8000),
                            workload)
    assert low.breakdown["sbt_translation"] > \
        5 * high.breakdown["sbt_translation"]
    # high thresholds forfeit coverage
    assert low.hotspot_coverage > high.hotspot_coverage

    config = base_config.with_(hot_threshold=2000)
    benchmark(lambda: simulate_startup(config, workload))
