"""Section 3.1 — the four startup scenarios, plus the persistent warm
start.

The paper's analysis (disk / memory / code-cache / steady-state startup)
motivates evaluating scenario 2.  This bench simulates all of them (and
the repository-backed PERSISTENT_WARM scenario added by
:mod:`repro.persist`) for the software VM and the reference, verifying
the orderings Section 3.1 argues: translation hurts most in the
memory-startup scenario, the disk load dominates scenario 1 (so the VM's
*relative* slowdown is smaller there), and warm-code-cache startup
removes translation entirely.  The persistent warm start lands between
memory startup and the in-memory warm cache: no translation, but a
boot-time re-materialization pass over the repository.
"""

from repro.analysis.reporting import format_table
from repro.timing import Scenario, simulate_startup
from repro.timing.sampler import interpolate_at
from conftest import SHORT_TRACE, emit, emit_json, ledger_payload


def test_scenarios(lab, benchmark):
    app_name = "Word"
    workload = lab.workload(app_name, SHORT_TRACE)
    rows = []
    results = {}
    for scenario in Scenario:
        ref = simulate_startup(lab.configs["Ref: superscalar"], workload,
                               scenario)
        soft = simulate_startup(lab.configs["VM.soft"], workload,
                                scenario)
        results[scenario] = (ref, soft)
        rows.append([scenario.value,
                     ref.total_cycles / 1e6,
                     soft.total_cycles / 1e6,
                     soft.total_cycles / ref.total_cycles])
    table = format_table(
        ["scenario", "ref Mcycles", "VM.soft Mcycles", "VM/ref"],
        rows,
        title="Section 3.1 - startup scenarios (Word, 100M instrs)")

    at = 20e6
    mem_ref, mem_soft = results[Scenario.MEMORY_STARTUP]
    disk_ref, disk_soft = results[Scenario.DISK_STARTUP]
    mem_gap = interpolate_at(mem_ref.series, at) / \
        max(interpolate_at(mem_soft.series, at), 1)
    disk_gap = interpolate_at(disk_ref.series, at) / \
        max(interpolate_at(disk_soft.series, at), 1)
    notes = (f"\nearly instruction gap (ref/VM at 20M cycles): "
             f"memory startup {mem_gap:.2f}x vs disk startup "
             f"{disk_gap:.2f}x\n"
             f"(Section 3.1: the relative slowdown is much less in "
             f"scenario 1 than in 2)")
    emit("scenarios", table + notes)
    # machine-readable companion: per-scenario, per-phase cycle
    # attribution from each simulation's ledger
    attribution = {scenario.value: {"ref": ledger_payload(ref),
                                    "soft": ledger_payload(soft)}
                   for scenario, (ref, soft) in results.items()}
    assert all(entry["conserved"]
               for pair in attribution.values()
               for entry in pair.values())
    emit_json("scenarios", {"app": app_name, "instrs": SHORT_TRACE,
                            "phase_attribution": attribution})

    # orderings from the paper's scenario analysis, with the persistent
    # warm start slotting between memory startup and the in-memory warm
    # code cache (it pays the re-materialization pass, not translation)
    order = [results[s][1].total_cycles
             for s in (Scenario.DISK_STARTUP, Scenario.MEMORY_STARTUP,
                       Scenario.PERSISTENT_WARM,
                       Scenario.CODE_CACHE_WARM, Scenario.STEADY_STATE)]
    assert order[0] > order[1] > order[2] > order[3] > order[4]
    assert disk_gap < mem_gap
    # warm scenarios have no translation overhead at all
    for scenario in (Scenario.CODE_CACHE_WARM, Scenario.PERSISTENT_WARM):
        warm = results[scenario][1]
        assert "bbt_translation" not in warm.breakdown
        assert "sbt_translation" not in warm.breakdown
    persistent = results[Scenario.PERSISTENT_WARM][1]
    assert persistent.breakdown.get("persist_load", 0) > 0
    assert persistent.persist_loaded_instrs > 0

    benchmark(lambda: simulate_startup(lab.configs["VM.soft"], workload,
                                       Scenario.CODE_CACHE_WARM))
