"""Fig. 10 — BBT translation overhead and emulation time in VM.be.

Per application, over the first 100M instructions: the percentage of VM
cycles spent *performing* BBT translation and the percentage spent
*executing* BBT translations.  Paper targets: with the XLTx86 assist the
average BBT translation overhead falls to 2.7% (about 5% at worst,
vs 9.9% software-only — 83 vs 20 cycles per translated instruction); BBT
emulation takes ~35% of cycles; SBT translation ~3.2% and SBT emulation
~59%; hotspot coverage is ~63% at 100M instructions rising past 75% at
500M.
"""

import statistics

from repro.analysis.reporting import format_table
from conftest import FULL_TRACE, SHORT_TRACE, emit


def _fractions(result):
    shares = result.breakdown_fractions()
    return {
        "bbt_overhead": shares.get("bbt_translation", 0.0),
        "bbt_emu": shares.get("bbt_emulation", 0.0),
        "sbt_overhead": shares.get("sbt_translation", 0.0),
        "sbt_emu": shares.get("sbt_emulation", 0.0),
    }


def test_fig10_bbt_overhead(lab, benchmark):
    rows = []
    be_overheads, be_emulations = [], []
    soft_overheads = []
    sbt_overheads, sbt_emulations = [], []
    coverages_100m, coverages_500m = [], []
    for app in lab.apps:
        be = lab.result(app.name, "VM.be", SHORT_TRACE)
        soft = lab.result(app.name, "VM.soft", SHORT_TRACE)
        shares = _fractions(be)
        soft_shares = _fractions(soft)
        rows.append([app.name,
                     100 * shares["bbt_overhead"],
                     100 * shares["bbt_emu"],
                     100 * soft_shares["bbt_overhead"]])
        be_overheads.append(shares["bbt_overhead"])
        be_emulations.append(shares["bbt_emu"])
        soft_overheads.append(soft_shares["bbt_overhead"])
        sbt_overheads.append(shares["sbt_overhead"])
        sbt_emulations.append(shares["sbt_emu"])
        coverages_100m.append(be.hotspot_coverage)
        coverages_500m.append(
            lab.result(app.name, "VM.be", FULL_TRACE).hotspot_coverage)

    rows.append(["AVERAGE",
                 100 * statistics.mean(be_overheads),
                 100 * statistics.mean(be_emulations),
                 100 * statistics.mean(soft_overheads)])
    table = format_table(
        ["benchmark", "VM.be BBT overhead %", "VM.be BBT emu %",
         "VM.soft BBT overhead %"],
        rows,
        title="Fig. 10 - BBT translation overhead & emulation time "
              "(first 100M instructions)")
    notes = (
        f"\npaper vs measured (averages):\n"
        f"  VM.be BBT overhead : paper 2.7% (<=5% worst) | measured "
        f"{100 * statistics.mean(be_overheads):.1f}% "
        f"(worst {100 * max(be_overheads):.1f}%)\n"
        f"  VM.soft BBT overhead: paper 9.9% | measured "
        f"{100 * statistics.mean(soft_overheads):.1f}%\n"
        f"  VM.be BBT emulation: paper ~35% | measured "
        f"{100 * statistics.mean(be_emulations):.1f}%\n"
        f"  SBT translation    : paper ~3.2% | measured "
        f"{100 * statistics.mean(sbt_overheads):.1f}%\n"
        f"  SBT emulation      : paper ~59% | measured "
        f"{100 * statistics.mean(sbt_emulations):.1f}%\n"
        f"  hotspot coverage   : paper 63% @100M -> 75+% @500M | "
        f"measured {100 * statistics.mean(coverages_100m):.0f}% -> "
        f"{100 * statistics.mean(coverages_500m):.0f}%")
    emit("fig10_bbt_overhead", table + notes)

    mean_be = statistics.mean(be_overheads)
    mean_soft = statistics.mean(soft_overheads)
    # the assist cuts BBT overhead by ~83/20; shares shift slightly
    assert mean_be < 0.06
    assert mean_soft > 2.5 * mean_be
    assert max(be_overheads) < 0.10
    assert 0.15 <= statistics.mean(be_emulations) <= 0.50
    assert statistics.mean(coverages_500m) > \
        statistics.mean(coverages_100m)

    result = lab.result("Word", "VM.be", SHORT_TRACE)
    benchmark(result.breakdown_fractions)
