"""Mass-boot consolidation — the paper's server scenario, herd-sized.

Section 1's motivating deployment is server consolidation: many VM
instances sharing one physical machine, where every instance booting
cold pays the translation startup transient the paper sets out to
kill.  This bench runs the fleet harness over the acceptance grid —
herd sizes 8 and 64, both boot policies, both image policies — against
one shared translation-cache server and reproduces the headline
claims:

* in the **staged shared-image** configuration (``one_then_others`` x
  ``one``), rank 0 translates once and every later rank warm-starts
  from the server: the amortization curve collapses after rank 0 and
  later pushes write **zero** new objects;
* ``all_at_once`` boots see the initial (empty) store, so every rank
  pays the identical cold transient — sharing needs staging, not just
  a shared server;
* ``one_per_vm`` (uniquely perturbed images) defeats manifest sharing
  no matter the boot policy: warm starts load nothing and every rank
  translates cold;
* the whole grid is **deterministic**: two sweeps at the same seed
  serialize byte-identically (the contract behind
  ``results/fleet_boot.json``);
* one ``--collect`` herd over a sharded cluster rides along so the
  archived report embeds the collector's canonical telemetry snapshot
  with passing SLO verdicts (docs/observability.md).
"""

from repro.analysis.reporting import format_table
from repro.fleet import (
    DEFAULT_GRID,
    FleetEngine,
    FleetScenario,
    amortization_gain,
    build_report,
    expand_grid,
    fleet_entry,
    run_sweep,
    serialize_report,
    validate_report,
)
from conftest import emit, emit_json


def _sweep():
    return run_sweep(expand_grid(DEFAULT_GRID, workers=8))


#: The telemetry rider: a staged herd over a 3x2 cluster with the
#: collector attached.  Its report entry carries the canonical
#: telemetry snapshot; the per-fleet assertions below skip it (cluster
#: pulls fan out per shard, so "one pull per instance" doesn't apply).
_COLLECT = FleetScenario(n=6, boot_policy="one_then_others", shards=3,
                         replicas=2, collect=True, workers=3, seed=0)


def test_fleet_boot(benchmark):
    results = _sweep()
    collected = FleetEngine().run(_COLLECT)
    report = build_report(results + [collected])
    assert validate_report(report) == []
    assert all(result.arch_ok for result in results)
    assert collected.arch_ok

    # the rider entry embeds canonical telemetry with passing verdicts
    telemetry = report["fleets"][-1]["telemetry"]
    assert telemetry["slo"], "no SLO verdicts in the collect entry"
    assert all(v["status"] == "pass" for v in telemetry["slo"])

    rows = []
    for result, entry in zip(results, report["fleets"]):
        scenario = entry["scenario"]
        tts = entry["tts"]
        curve = entry["amortization"]
        gain = amortization_gain(entry)
        rows.append([
            scenario["n"], scenario["boot_policy"],
            scenario["image_policy"],
            curve[0]["tts_cycles"], tts["p50"], tts["p95"], tts["p99"],
            f"{gain:.2f}" if gain != float("inf") else "inf",
            sum(point["push_written"] for point in curve),
        ])

        shared = scenario["image_policy"] == "one"
        staged = scenario["boot_policy"] == "one_then_others"
        rank0 = curve[0]
        if staged and shared:
            # the headline: later ranks boot strictly cheaper than
            # rank 0 and their pushes dedup to zero new objects
            assert gain > 1.0
            for point in curve[1:]:
                assert point["tts_cycles"] < rank0["tts_cycles"]
                assert point["records_loaded"] > 0
                assert point["push_written"] == 0
        elif shared:
            # all_at_once: everyone saw the empty store; identical cold
            # transient, dedup only at publish time
            assert len({point["tts_cycles"] for point in curve}) == 1
            assert sum(p["push_written"] for p in curve) == \
                rank0["push_written"]
        else:
            # one_per_vm: distinct fingerprints, nothing to share
            assert all(p["records_loaded"] == 0 for p in curve)

        # the herd was healthy: no retries/fallbacks/breaker trips
        assert all(count == 0 for count in entry["degraded"].values())
        # server load scales with the herd: one pull per instance
        assert entry["server"]["requests"]["pull"] == scenario["n"]
        assert entry["server"]["errors"] == 0

    # determinism acceptance: a second sweep (collect rider included)
    # serializes byte-identically
    rerun = _sweep() + [FleetEngine().run(_COLLECT)]
    assert serialize_report(build_report(rerun)) == \
        serialize_report(report)

    table = format_table(
        ["n", "boot policy", "image policy", "rank0 tts", "p50 tts",
         "p95 tts", "p99 tts", "gain", "objects written"],
        rows,
        title="Fleet boots - time-to-steady-state (simulated cycles) "
              "across the acceptance grid")
    notes = ("\nstaged shared-image fleets amortize rank 0's "
             "translations through the cache server; every other "
             "combination pays the cold transient per instance")
    emit("fleet_boot", table + notes)
    emit_json("fleet_boot", report)

    # timed kernel: one staged shared-image herd end to end
    benchmark(lambda: FleetEngine().run(
        FleetScenario(n=8, boot_policy="one_then_others", workers=8)))


def test_fleet_entry_is_canonical():
    """The per-fleet report entry never leaks wall-clock fields."""
    result = FleetEngine().run(FleetScenario(n=2, workers=2))
    entry = fleet_entry(result)
    assert "latency" not in entry["server"]
    assert "ops" not in entry
    loose = fleet_entry(result, canonical=False)
    assert "latency" in loose["server"]
