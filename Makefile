# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench examples figures clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Run every example script end to end.
examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

# Regenerate results/*.txt and the archived outputs.
figures:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
