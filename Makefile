# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test lint lint-strict verify bench bench-smoke chaos trace-smoke serve-smoke fleet-smoke cluster-smoke monitor-smoke overload-smoke examples figures clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Static analysis (docs/static_analysis.md): reprolint's
# project-invariant rules always run — determinism, lock discipline,
# fault-point coverage, taxonomy conformance.  Style checking goes to
# ruff + mypy when installed; otherwise reprolint's built-in style pack
# (the old tools/minilint.py) covers the zero-dependency case.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests tools; \
		PYTHONPATH=src $(PYTHON) -m repro lint --no-style; \
	else \
		echo "ruff not installed; reprolint style pack covers F401/E501/W19x/W29x"; \
		PYTHONPATH=src $(PYTHON) -m repro lint; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping type check"; \
	fi

# The verify-gate flavor: the baseline escape hatch is disabled, so
# legacy violations fail too; only inline-justified suppressions pass.
lint-strict:
	PYTHONPATH=src $(PYTHON) -m repro lint --strict

# Lint + the tier-1 suite with the translation verifier forced on
# (the autouse sanitizer fixture arms the full rule-pack at every
# TranslationDirectory.install; see docs/verifier.md), plus the
# warm-start smoke gate, the seeded chaos gate and the observability
# smoke gate.
verify: lint lint-strict bench-smoke chaos trace-smoke serve-smoke fleet-smoke cluster-smoke monitor-smoke overload-smoke
	REPRO_VERIFY=1 PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fast gate for the persistent translation cache: a warm start from the
# repository must do strictly fewer (in fact zero) BBT translations and
# cost fewer simulated cycles than a cold start (docs/persistence.md).
# The run appends its metrics to results/bench_history.jsonl; the
# trajectory gate then fails on any regression beyond tolerance.
bench-smoke:
	$(PYTHON) tools/bench_smoke.py
	PYTHONPATH=src $(PYTHON) -m repro bench diff

# Seeded fault-injection gate: every fault class, every workload, warm
# and cold — faulted runs must match their fault-free baselines exactly,
# and fsck must repair every injected disk corruption
# (docs/robustness.md).
chaos:
	$(PYTHON) tools/chaos.py

# Observability gate: every seed workload's trace export must pass the
# checked-in schema with conserved per-phase cycle totals, traced runs
# must be byte-identical, and disabled tracing must cost nothing
# measurable on the throughput hot loop (docs/observability.md).
trace-smoke:
	$(PYTHON) tools/trace_smoke.py

# Shared-cache server gate: spawn a real server subprocess, push and
# warm-boot through it, then kill -9 it — degraded clients must still
# reproduce the cold run's architected results (docs/cache_server.md).
serve-smoke:
	$(PYTHON) tools/server_smoke.py

# Mass-boot gate: sweep every boot/image policy pair on a small herd —
# architected equality per instance, valid percentile reports, a real
# amortization gain in the staged shared-image scenario, and
# byte-identical same-seed reports (docs/fleet.md).
fleet-smoke:
	$(PYTHON) tools/fleet_smoke.py

# Cluster gate: a real 3x2 shard grid of serve subprocesses — push a
# workload, kill -9 the primary of a record-owning group mid-herd,
# push another workload while it is down, then restart it and prove
# anti-entropy re-replicates exactly its missed share; every boot must
# byte-match its cold baseline throughout (docs/cluster.md).
cluster-smoke:
	$(PYTHON) tools/cluster_smoke.py

# Telemetry gate: a --collect fleet over a live 3x2 cluster must embed
# passing SLO verdicts in a byte-deterministic collector snapshot, and
# its merged Perfetto trace must flow-link every client pull/push span
# to the server span that served it; `repro monitor` must read the
# same cluster end to end (docs/observability.md).
monitor-smoke:
	$(PYTHON) tools/monitor_smoke.py

# Overload-protection gate: a 16-boot cold herd through a deliberately
# undersized server must shed (retryable 'overloaded' + retry_after),
# keep retry amplification at or under the 2x budget target, accept no
# response past its deadline, and byte-match the fault-free architected
# state; a forced hedge drill through a live 1x2 cluster must win on
# the sibling replica (docs/overload.md).
overload-smoke:
	$(PYTHON) tools/overload_smoke.py

# Run every example script end to end.
examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

# Regenerate results/*.txt and the archived outputs.
figures:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
